"""Fabric-wide counters and latency records.

Every fabric owns one :class:`FabricStats`; the systems and benchmarks read
it.  Conservation (injected == delivered + in flight) is the first property
test every fabric must pass.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.fabric.message import Message


@dataclass
class LatencySample:
    """One delivered message's timing record."""

    msg_id: int
    src: int
    dst: int
    created_cycle: int
    injected_cycle: int
    delivered_cycle: int
    deflections: int = 0

    @property
    def network_latency(self) -> int:
        return self.delivered_cycle - self.injected_cycle

    @property
    def total_latency(self) -> int:
        return self.delivered_cycle - self.created_cycle


@dataclass
class FabricStats:
    """Counters kept by every fabric implementation."""

    accepted: int = 0            # messages accepted into a source queue
    rejected: int = 0            # messages refused (source queue full)
    injected: int = 0            # messages that won network resources
    delivered: int = 0           # messages handed to their destination
    deflections: int = 0         # multi-ring only: eject misses
    itags_placed: int = 0
    etags_placed: int = 0
    swap_events: int = 0         # DRM activations (RBRG-L2)
    delivered_bytes: float = 0.0
    samples: List[LatencySample] = field(default_factory=list)
    keep_samples: bool = True
    #: Delivered-message count per destination node, for equilibrium checks.
    per_dst_delivered: Dict[int, int] = field(default_factory=dict)

    def record_delivery(self, msg: Message, deflections: int = 0) -> None:
        self.delivered += 1
        self.delivered_bytes += msg.size_bytes
        self.per_dst_delivered[msg.dst] = self.per_dst_delivered.get(msg.dst, 0) + 1
        if self.keep_samples and msg.injected_cycle is not None:
            self.samples.append(
                LatencySample(
                    msg_id=msg.msg_id,
                    src=msg.src,
                    dst=msg.dst,
                    created_cycle=msg.created_cycle,
                    injected_cycle=msg.injected_cycle,
                    delivered_cycle=msg.delivered_cycle or 0,
                    deflections=deflections,
                )
            )

    @property
    def in_flight(self) -> int:
        """Messages accepted but not yet delivered."""
        return self.accepted - self.delivered

    def mean_network_latency(self) -> Optional[float]:
        if not self.samples:
            return None
        return sum(s.network_latency for s in self.samples) / len(self.samples)

    def mean_total_latency(self) -> Optional[float]:
        if not self.samples:
            return None
        return sum(s.total_latency for s in self.samples) / len(self.samples)

    def latency_percentile(self, pct: float) -> Optional[float]:
        """Total-latency percentile, pct in [0, 100]."""
        if not self.samples:
            return None
        ordered = sorted(s.total_latency for s in self.samples)
        idx = min(len(ordered) - 1, int(round(pct / 100.0 * (len(ordered) - 1))))
        return float(ordered[idx])
