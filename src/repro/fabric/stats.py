"""Fabric-wide counters and latency records.

Every fabric owns one :class:`FabricStats`; the systems and benchmarks read
it.  Conservation (injected == delivered + in flight) is the first property
test every fabric must pass.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional

from repro.analysis.metrics import percentile as _percentile
from repro.fabric.message import Message
from repro.obs.trace import NULL_TRACE

if TYPE_CHECKING:  # pragma: no cover - annotation only, avoids a cycle
    from repro.faults.stats import FaultStats
    from repro.obs.trace import NullTrace, TraceRecorder


class LatencySample:
    """One delivered message's timing record.

    A plain ``__slots__`` class (not a dataclass): one instance is
    allocated per delivered message, which makes construction part of the
    simulator's hot path.
    """

    __slots__ = ("msg_id", "src", "dst", "created_cycle", "injected_cycle",
                 "delivered_cycle", "deflections")

    def __init__(self, msg_id: int, src: int, dst: int, created_cycle: int,
                 injected_cycle: int, delivered_cycle: int,
                 deflections: int = 0):
        self.msg_id = msg_id
        self.src = src
        self.dst = dst
        self.created_cycle = created_cycle
        self.injected_cycle = injected_cycle
        self.delivered_cycle = delivered_cycle
        self.deflections = deflections

    def _key(self):
        return (self.msg_id, self.src, self.dst, self.created_cycle,
                self.injected_cycle, self.delivered_cycle, self.deflections)

    def __eq__(self, other) -> bool:
        if not isinstance(other, LatencySample):
            return NotImplemented
        return self._key() == other._key()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"LatencySample(msg_id={self.msg_id}, {self.src}->{self.dst}, "
                f"created={self.created_cycle}, injected={self.injected_cycle}, "
                f"delivered={self.delivered_cycle}, defl={self.deflections})")

    @property
    def network_latency(self) -> int:
        return self.delivered_cycle - self.injected_cycle

    @property
    def total_latency(self) -> int:
        return self.delivered_cycle - self.created_cycle


@dataclass
class FabricStats:
    """Counters kept by every fabric implementation."""

    accepted: int = 0            # messages accepted into a source queue
    rejected: int = 0            # messages refused (source queue full)
    injected: int = 0            # messages that won network resources
    delivered: int = 0           # messages handed to their destination
    deflections: int = 0         # multi-ring only: eject misses
    itags_placed: int = 0
    etags_placed: int = 0
    swap_events: int = 0         # DRM activations (RBRG-L2)
    #: Messages abandoned by the reliable link layer (retry budget
    #: exhausted).  Zero unless fault injection is active.
    dropped: int = 0
    #: Cycles a D2D link head could not enter the peer Inject Queue
    #: (ring-side backpressure on the link exit).
    link_stall_cycles: int = 0
    delivered_bytes: float = 0.0
    samples: List[LatencySample] = field(default_factory=list)
    keep_samples: bool = True
    #: Delivered-message count per destination node, for equilibrium checks.
    per_dst_delivered: Dict[int, int] = field(default_factory=dict)
    #: Fault-injection counters (:class:`repro.faults.stats.FaultStats`);
    #: None unless a reliable link layer is enabled.  Part of dataclass
    #: equality, so the fast/reference equivalence suite also pins fault
    #: schedules and recovery behaviour.
    faults: Optional["FaultStats"] = None
    #: Flit-level event recorder (:mod:`repro.obs`).  Defaults to the
    #: shared nil object, so untraced hot paths pay one ``trace.enabled``
    #: attribute check per potential event.  Excluded from equality —
    #: recorders observe a run, they are not part of its outcome.
    trace: "TraceRecorder | NullTrace" = field(
        default=NULL_TRACE, compare=False, repr=False)

    def record_delivery(self, msg: Message, deflections: int = 0) -> None:
        self.delivered += 1
        self.delivered_bytes += msg.size_bytes
        dst = msg.dst
        per_dst = self.per_dst_delivered
        per_dst[dst] = per_dst.get(dst, 0) + 1
        if self.keep_samples and msg.injected_cycle is not None:
            self.samples.append(
                LatencySample(msg.msg_id, msg.src, dst, msg.created_cycle,
                              msg.injected_cycle, msg.delivered_cycle or 0,
                              deflections)
            )

    @property
    def in_flight(self) -> int:
        """Messages accepted but neither delivered nor dropped."""
        return self.accepted - self.delivered - self.dropped

    def mean_network_latency(self) -> Optional[float]:
        if not self.samples:
            return None
        return sum(s.network_latency for s in self.samples) / len(self.samples)

    def mean_total_latency(self) -> Optional[float]:
        if not self.samples:
            return None
        return sum(s.total_latency for s in self.samples) / len(self.samples)

    def latency_percentile(self, pct: float) -> Optional[float]:
        """*Total*-latency percentile (creation -> delivery), pct in
        [0, 100]; None with no samples.  Uses the shared interpolating
        definition (:func:`repro.analysis.metrics.percentile`)."""
        if not self.samples:
            return None
        return _percentile([s.total_latency for s in self.samples], pct)

    def network_latency_percentile(self, pct: float) -> Optional[float]:
        """*Network*-latency percentile (injection -> delivery), pct in
        [0, 100]; None with no samples.  Report this beside
        :meth:`mean_network_latency` — and label which of the two
        latencies a number is, they diverge under injection queueing."""
        if not self.samples:
            return None
        return _percentile([s.network_latency for s in self.samples], pct)
