"""Terminal plotting for benchmark output.

The paper's figures are line charts (Figure 11's latency curves,
Figure 14's probe traces).  These helpers render compact ASCII versions
so the benchmark harness can show the *shape* inline, next to the
numeric tables saved in ``benchmarks/results/``.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

_SPARK_LEVELS = " .:-=+*#%@"


def sparkline(values: Sequence[float], width: Optional[int] = None) -> str:
    """One-line intensity strip of ``values`` (resampled to ``width``)."""
    data = list(values)
    if not data:
        return ""
    if width is not None and width > 0 and len(data) > width:
        stride = len(data) / width
        data = [data[int(i * stride)] for i in range(width)]
    low = min(data)
    high = max(data)
    span = high - low
    if span <= 0:
        return _SPARK_LEVELS[1] * len(data)
    chars = []
    for v in data:
        idx = int((v - low) / span * (len(_SPARK_LEVELS) - 1))
        chars.append(_SPARK_LEVELS[idx])
    return "".join(chars)


def line_chart(
    series: Dict[str, Sequence[float]],
    xs: Optional[Sequence[float]] = None,
    height: int = 10,
    width: int = 60,
    title: str = "",
) -> str:
    """Multi-series ASCII line chart; each series gets its own glyph."""
    if not series:
        raise ValueError("need at least one series")
    if height < 2 or width < 8:
        raise ValueError("chart too small")
    glyphs = "ox+*#@&%"
    all_vals = [v for vs in series.values() for v in vs]
    if not all_vals:
        raise ValueError("series are empty")
    low, high = min(all_vals), max(all_vals)
    span = (high - low) or 1.0
    npoints = max(len(vs) for vs in series.values())

    grid = [[" "] * width for _ in range(height)]
    for k, (name, vs) in enumerate(series.items()):
        glyph = glyphs[k % len(glyphs)]
        for i, v in enumerate(vs):
            col = int(i / max(npoints - 1, 1) * (width - 1))
            row = height - 1 - int((v - low) / span * (height - 1))
            grid[row][col] = glyph
    lines = []
    if title:
        lines.append(title)
    label_high = f"{high:g}"
    label_low = f"{low:g}"
    pad = max(len(label_high), len(label_low))
    for r, row in enumerate(grid):
        label = label_high if r == 0 else label_low if r == height - 1 else ""
        lines.append(f"{label:>{pad}} |" + "".join(row))
    if xs is not None and len(xs) >= 2:
        lines.append(f"{'':>{pad}} +" + "-" * width)
        lines.append(f"{'':>{pad}}  {xs[0]:g}{'':>{max(width - 12, 1)}}{xs[-1]:g}")
    legend = "  ".join(f"{glyphs[k % len(glyphs)]}={name}"
                       for k, name in enumerate(series))
    lines.append(legend)
    return "\n".join(lines)


def histogram(values: Sequence[float], bins: int = 10, width: int = 40) -> str:
    """Horizontal ASCII histogram."""
    data = list(values)
    if not data:
        raise ValueError("no values")
    if bins < 1:
        raise ValueError("need at least one bin")
    low, high = min(data), max(data)
    span = (high - low) or 1.0
    counts = [0] * bins
    for v in data:
        idx = min(bins - 1, int((v - low) / span * bins))
        counts[idx] += 1
    peak = max(counts)
    lines = []
    for b, count in enumerate(counts):
        left = low + span * b / bins
        bar = "#" * int(count / peak * width) if peak else ""
        lines.append(f"{left:10.1f} | {bar} {count}")
    return "\n".join(lines)
