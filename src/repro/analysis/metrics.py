"""Latency statistics and the knee ("turning point") detector.

Figure 11 plots one core's DDR latency against rising background traffic
and reads off the turning point where latency departs from its flat
zero-load regime.  :func:`find_knee` formalizes that: the first sweep
point whose latency exceeds the baseline by a threshold factor.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple


@dataclass(frozen=True)
class LatencySummary:
    """Summary statistics of a latency sample set."""

    count: int
    mean: float
    p50: float
    p95: float
    p99: float
    maximum: float


def percentile(samples: Sequence[float], pct: float) -> float:
    """The repository-wide percentile definition (linear interpolation).

    Rank ``pct/100 * (n-1)`` over the sorted samples, interpolating
    between the two neighbouring order statistics when the rank is
    fractional (numpy's default "linear" method).  Every percentile in
    the repo — :class:`repro.fabric.stats.FabricStats`,
    :class:`repro.cpu.core.CoreStats`, :func:`summarize_latencies`, the
    observability histograms — goes through this definition, replacing
    three divergent nearest-rank variants whose banker's-rounding
    ``int(round(...))`` picked the wrong rank on small sample sets
    (e.g. the median of two samples returned the lower one instead of
    their midpoint).

    Raises ``ValueError`` on an empty sample set or ``pct`` outside
    [0, 100]; a single sample is every percentile of itself.
    """
    if not 0.0 <= pct <= 100.0:
        raise ValueError("pct must be within [0, 100]")
    n = len(samples)
    if n == 0:
        raise ValueError("no samples")
    ordered = sorted(samples)
    rank = pct / 100.0 * (n - 1)
    lower = int(rank)
    frac = rank - lower
    if frac == 0.0 or lower + 1 >= n:
        return float(ordered[lower])
    return ordered[lower] + (ordered[lower + 1] - ordered[lower]) * frac


def _percentile(ordered: Sequence[float], pct: float) -> float:
    return percentile(ordered, pct)


def summarize_latencies(samples: Sequence[float]) -> LatencySummary:
    if not samples:
        raise ValueError("no latency samples to summarize")
    ordered = sorted(samples)
    return LatencySummary(
        count=len(ordered),
        mean=sum(ordered) / len(ordered),
        p50=_percentile(ordered, 50),
        p95=_percentile(ordered, 95),
        p99=_percentile(ordered, 99),
        maximum=float(ordered[-1]),
    )


def find_knee(
    xs: Sequence[float],
    ys: Sequence[float],
    threshold: float = 1.5,
    baseline_points: int = 1,
) -> Optional[float]:
    """First x where y exceeds ``threshold`` x the low-load baseline.

    ``baseline_points`` early points define the flat regime.  Returns
    None if the curve never leaves it (the system absorbed the sweep).
    """
    if len(xs) != len(ys):
        raise ValueError("xs and ys must align")
    if len(xs) < baseline_points + 1:
        raise ValueError("need more sweep points than baseline points")
    if threshold <= 1.0:
        raise ValueError("threshold must exceed 1.0")
    baseline = sum(ys[:baseline_points]) / baseline_points
    if baseline <= 0:
        raise ValueError("baseline latency must be positive")
    for x, y in zip(xs[baseline_points:], ys[baseline_points:]):
        if y > threshold * baseline:
            return float(x)
    return None


def saturation_throughput(
    offered: Sequence[float], accepted: Sequence[float], tolerance: float = 0.95
) -> float:
    """Highest offered load the fabric still accepts at ``tolerance``."""
    if len(offered) != len(accepted):
        raise ValueError("offered and accepted must align")
    best = 0.0
    for off, acc in zip(offered, accepted):
        if off > 0 and acc / off >= tolerance:
            best = max(best, off)
    return best
