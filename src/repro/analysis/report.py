"""Uniform paper-vs-measured reporting for the benchmark harness.

Every benchmark renders its table/figure through these helpers so
EXPERIMENTS.md and the bench output stay consistent: one row per
measured quantity, with the paper's value alongside and the ratio.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence


def format_table(headers: Sequence[str], rows: Sequence[Sequence[object]]) -> str:
    """Plain-text aligned table."""
    cells = [[str(h) for h in headers]] + [[str(c) for c in row] for row in rows]
    widths = [max(len(row[i]) for row in cells) for i in range(len(headers))]
    lines = []
    for r, row in enumerate(cells):
        line = "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row))
        lines.append(line.rstrip())
        if r == 0:
            lines.append("  ".join("-" * w for w in widths))
    return "\n".join(lines)


@dataclass
class ComparisonTable:
    """Rows of (label, paper value, measured value)."""

    title: str
    unit: str = ""
    rows: List[Dict] = field(default_factory=list)

    def add(self, label: str, paper: Optional[float], measured: float) -> None:
        self.rows.append({"label": label, "paper": paper, "measured": measured})

    def render(self) -> str:
        body = []
        for row in self.rows:
            paper = row["paper"]
            measured = row["measured"]
            if paper in (None, 0):
                ratio = "-"
                paper_text = "-" if paper is None else f"{paper:g}"
            else:
                ratio = f"{measured / paper:.2f}x"
                paper_text = f"{paper:g}"
            body.append([row["label"], paper_text, f"{measured:.3g}", ratio])
        header = f"== {self.title}" + (f" [{self.unit}]" if self.unit else "")
        return header + "\n" + format_table(
            ["case", "paper", "measured", "measured/paper"], body
        )

    def measured(self, label: str) -> float:
        for row in self.rows:
            if row["label"] == label:
                return row["measured"]
        raise KeyError(label)
