"""Result processing: latency statistics, knee detection, report tables."""

from repro.analysis.metrics import (
    LatencySummary,
    find_knee,
    percentile,
    summarize_latencies,
)
from repro.analysis.report import ComparisonTable, format_table

__all__ = [
    "LatencySummary",
    "percentile",
    "summarize_latencies",
    "find_knee",
    "ComparisonTable",
    "format_table",
]
