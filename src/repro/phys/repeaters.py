"""Repeater insertion for timing closure (Section 3.3).

"To meet a specific target frequency (3 GHz), a long wire needs to be
split into several segments, and repeaters must be inserted between the
segments."  A repeater station at each jump boundary costs area and
power; the high-density fabric needs three of them for every one the
high-speed fabric needs, which is the paper's argument for optimizing
distance per cycle rather than wire density.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.params import NOC_FREQ_HZ
from repro.phys.wires import WireFabric, distance_per_cycle_um

#: Area of one repeater bank per bit of bus width, µm².
REPEATER_AREA_PER_BIT_UM2 = 1.2
#: Leakage+switching power of one repeater bank per bit at 3 GHz, µW.
REPEATER_POWER_PER_BIT_UW = 0.9


@dataclass(frozen=True)
class RepeaterPlan:
    """Repeater placement for one wire run."""

    fabric_name: str
    length_um: float
    bus_bits: int
    segments: int
    repeater_banks: int

    @property
    def area_um2(self) -> float:
        return self.repeater_banks * self.bus_bits * REPEATER_AREA_PER_BIT_UM2

    @property
    def power_uw(self) -> float:
        return self.repeater_banks * self.bus_bits * REPEATER_POWER_PER_BIT_UW

    @property
    def pipeline_cycles(self) -> int:
        """Wire latency in cycles once segmented."""
        return self.segments


def plan_repeaters(
    fabric: WireFabric,
    length_um: float,
    bus_bits: int,
    freq_hz: float = NOC_FREQ_HZ,
) -> RepeaterPlan:
    """Segment a wire run of ``length_um`` to close timing at ``freq_hz``."""
    if length_um < 0:
        raise ValueError("length must be non-negative")
    if bus_bits <= 0:
        raise ValueError("bus must be at least one bit")
    jump = distance_per_cycle_um(fabric, freq_hz)
    segments = max(1, int(-(-length_um // jump))) if length_um > 0 else 0
    banks = max(0, segments - 1)
    return RepeaterPlan(
        fabric_name=fabric.name,
        length_um=length_um,
        bus_bits=bus_bits,
        segments=segments,
        repeater_banks=banks,
    )
