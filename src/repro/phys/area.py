"""NoC area accounting (the Network Area Efficiency KPI, Section 2.2).

The bufferless cross station has no virtual channels and no buffer
allocation logic, so its area is a mux stage plus the small inject/eject
queues; a conventional buffered router pays per-port input buffers, VC
state, and allocators.  The constants are first-order standard-cell and
SRAM estimates for a 7 nm-class process; the *ratios* between the two
organizations are what the ablation benchmarks assert.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.core.config import TopologySpec
from repro.params import FLIT_DATA_BITS, FLIT_HEADER_BITS, QUEUES, QueueParams
from repro.phys.wires import WireFabric, wire_track_area_um2

#: Flip-flop/SRAM cost of one buffered flit entry, µm² per bit.
BUFFER_AREA_PER_BIT_UM2 = 0.35
#: Mux/arbiter fabric of a bufferless cross station, µm² per bus bit.
STATION_LOGIC_AREA_PER_BIT_UM2 = 0.8
#: Route/VC/switch allocators of a buffered router, µm² per bus bit per port.
ROUTER_LOGIC_AREA_PER_BIT_UM2 = 2.2
#: RBRG data/control, µm² per bus bit (L1) — L2 adds the PHY macro.
BRIDGE_L1_AREA_PER_BIT_UM2 = 1.5
BRIDGE_L2_AREA_PER_BIT_UM2 = 4.0

FLIT_BITS = FLIT_HEADER_BITS + FLIT_DATA_BITS


@dataclass(frozen=True)
class AreaBreakdown:
    """NoC area by component class, µm²."""

    stations_um2: float
    bridges_um2: float
    queues_um2: float
    wires_um2: float

    @property
    def total_um2(self) -> float:
        return (self.stations_um2 + self.bridges_um2
                + self.queues_um2 + self.wires_um2)

    @property
    def total_mm2(self) -> float:
        return self.total_um2 / 1e6


def station_area_um2(queues: QueueParams = QUEUES, ports: int = 2) -> float:
    """One bufferless cross station with ``ports`` node interfaces."""
    logic = STATION_LOGIC_AREA_PER_BIT_UM2 * FLIT_BITS
    queue_entries = ports * (queues.inject_queue_depth + queues.eject_queue_depth)
    buffers = queue_entries * FLIT_BITS * BUFFER_AREA_PER_BIT_UM2
    return logic + buffers


def bridge_area_um2(level: int, queues: QueueParams = QUEUES) -> float:
    per_bit = BRIDGE_L1_AREA_PER_BIT_UM2 if level == 1 else BRIDGE_L2_AREA_PER_BIT_UM2
    logic = per_bit * FLIT_BITS
    entries = 2 * (queues.bridge_rx_depth + queues.bridge_tx_depth)
    if level == 2:
        entries += 2 * queues.bridge_reserved_tx
    return logic + entries * FLIT_BITS * BUFFER_AREA_PER_BIT_UM2


def buffered_router_area_um2(
    ports: int = 5,
    input_depth: int = 4,
    virtual_channels: int = 2,
) -> float:
    """One conventional input-queued router (the mesh baseline's node)."""
    buffers = ports * virtual_channels * input_depth * FLIT_BITS \
        * BUFFER_AREA_PER_BIT_UM2
    logic = ROUTER_LOGIC_AREA_PER_BIT_UM2 * FLIT_BITS * ports
    return buffers + logic


def noc_area(
    topology: TopologySpec,
    fabric: WireFabric,
    queues: QueueParams = QUEUES,
    stop_length_um: Optional[float] = None,
    lanes_per_direction: int = 1,
) -> AreaBreakdown:
    """Area of a multi-ring NoC built on ``fabric``.

    ``stop_length_um`` defaults to the fabric's jump distance — one stop
    of wire per cycle, the distance-per-cycle identity.
    """
    if stop_length_um is None:
        stop_length_um = fabric.jump_um_at_3ghz

    # Station count: one per occupied (ring, stop).
    occupied = set()
    node_queue_ports = 0
    for p in topology.nodes:
        occupied.add((p.ring, p.stop))
        node_queue_ports += 1
    stations_area = 0.0
    for b in topology.bridges:
        occupied.add((b.ring_a, b.stop_a))
        occupied.add((b.ring_b, b.stop_b))
    stations_area = len(occupied) * STATION_LOGIC_AREA_PER_BIT_UM2 * FLIT_BITS
    queue_entries = node_queue_ports * (
        queues.inject_queue_depth + queues.eject_queue_depth
    )
    queues_area = queue_entries * FLIT_BITS * BUFFER_AREA_PER_BIT_UM2

    bridges_area = sum(bridge_area_um2(b.level, queues) for b in topology.bridges)

    lane_count = {True: 2, False: 1}
    wires_area = 0.0
    for ring in topology.rings:
        ring_lanes = (ring.lanes if ring.lanes is not None
                      else lanes_per_direction)
        lanes = ring_lanes * lane_count[ring.bidirectional]
        length = ring.nstops * stop_length_um
        wires_area += lanes * wire_track_area_um2(fabric, length, FLIT_BITS)

    return AreaBreakdown(
        stations_um2=stations_area,
        bridges_um2=bridges_area,
        queues_um2=queues_area,
        wires_um2=wires_area,
    )
