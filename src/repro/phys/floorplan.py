"""Chiplet floorplans: physical distance → ring stops.

The bridge between geometry and the cycle-level simulator: a ring routed
around a die of given dimensions has a perimeter; dividing by the wire
fabric's distance-per-cycle gives the number of slots (== stops == lap
cycles) the simulated ring must have.  This is how the distance-per-cycle
co-design metric (Section 3.3) enters every latency number the simulator
produces.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.phys.wires import WireFabric, cycles_for_distance, usable_stride_area_um2


def ring_stops_for_perimeter(
    fabric: WireFabric, perimeter_um: float, min_stops: int = 2
) -> int:
    """Slots needed for a ring of physical length ``perimeter_um``."""
    return max(min_stops, cycles_for_distance(fabric, perimeter_um))


@dataclass(frozen=True)
class ChipletFloorplan:
    """One rectangular die with a perimeter ring."""

    name: str
    width_um: float
    height_um: float
    #: Fraction of the perimeter the ring actually follows (rings are
    #: routed inside the pad ring and around macros).
    ring_path_fraction: float = 0.8

    def __post_init__(self) -> None:
        if self.width_um <= 0 or self.height_um <= 0:
            raise ValueError("die dimensions must be positive")
        if not 0 < self.ring_path_fraction <= 1:
            raise ValueError("ring_path_fraction must be in (0, 1]")

    @property
    def area_mm2(self) -> float:
        return self.width_um * self.height_um / 1e6

    @property
    def ring_length_um(self) -> float:
        return 2 * (self.width_um + self.height_um) * self.ring_path_fraction

    def ring_stops(self, fabric: WireFabric) -> int:
        """Ring circumference in slots for this die on ``fabric``."""
        return ring_stops_for_perimeter(fabric, self.ring_length_um)

    def lap_time_ns(self, fabric: WireFabric, freq_hz: float = 3.0e9) -> float:
        return self.ring_stops(fabric) / freq_hz * 1e9

    def blocked_area_mm2(self, fabric: WireFabric,
                         channel_height_um: float = 50.0) -> float:
        """Placement area lost to the ring's wire channel.

        The dense fabric's continuous metal blocks everything beneath it
        (Figure 6); the high-speed fabric gives its stride slots back.
        """
        gross = self.ring_length_um * channel_height_um
        recovered = usable_stride_area_um2(fabric, self.ring_length_um,
                                           channel_height_um)
        return max(0.0, gross - recovered) / 1e6


#: Representative dies for the paper's systems (order-of-magnitude
#: dimensions for a reticle-class package; used by Table 4 benches).
SERVER_COMPUTE_DIE = ChipletFloorplan("server-ccd", 22_000, 18_000)
SERVER_IO_DIE = ChipletFloorplan("server-iod", 14_000, 10_000)
AI_COMPUTE_DIE = ChipletFloorplan("ai-die", 25_000, 20_000)


def compare_fabrics(
    floorplan: ChipletFloorplan, fabrics: List[WireFabric]
) -> Dict[str, Dict[str, float]]:
    """Per-fabric floorplan metrics — the Table 4 decision as numbers."""
    out: Dict[str, Dict[str, float]] = {}
    for fabric in fabrics:
        out[fabric.name] = {
            "ring_stops": float(floorplan.ring_stops(fabric)),
            "lap_time_ns": floorplan.lap_time_ns(fabric),
            "blocked_area_mm2": floorplan.blocked_area_mm2(fabric),
            "distance_per_cycle_um": fabric.jump_um_at_3ghz,
        }
    return out
