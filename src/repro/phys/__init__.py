"""Physical-implementation model (Section 3.3, Table 4, Figure 6).

The co-design's physical leg: wire fabrics with their jump distance per
3 GHz cycle, repeater insertion for timing closure, area accounting for
stations/bridges/buffers, chiplet floorplans that convert physical
distance into ring stops (the distance-per-cycle metric), and the energy
model behind the bufferless-vs-buffered comparison and SPECpower.
"""

from repro.phys.wires import (
    HIGH_DENSITY,
    HIGH_SPEED,
    WireFabric,
    cycles_for_distance,
    distance_per_cycle_um,
)
from repro.phys.repeaters import RepeaterPlan, plan_repeaters
from repro.phys.area import AreaBreakdown, buffered_router_area_um2, noc_area
from repro.phys.floorplan import ChipletFloorplan, ring_stops_for_perimeter
from repro.phys.energy import EnergyModel, fabric_energy_joules

__all__ = [
    "WireFabric",
    "HIGH_DENSITY",
    "HIGH_SPEED",
    "distance_per_cycle_um",
    "cycles_for_distance",
    "RepeaterPlan",
    "plan_repeaters",
    "AreaBreakdown",
    "noc_area",
    "buffered_router_area_um2",
    "ChipletFloorplan",
    "ring_stops_for_perimeter",
    "EnergyModel",
    "fabric_energy_joules",
]
