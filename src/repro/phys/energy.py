"""Energy model: the bufferless advantage and the SPECpower substrate.

First-order 7 nm-class energy constants.  A bufferless hop spends wire
energy plus a mux stage; a buffered hop additionally writes and reads an
input buffer and runs allocation.  Eliminating those per-hop buffer
accesses is the energy argument of Section 3.4.2.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.params import FLIT_DATA_BITS, FLIT_HEADER_BITS

if TYPE_CHECKING:
    from repro.fabric.stats import FabricStats

FLIT_BITS = FLIT_HEADER_BITS + FLIT_DATA_BITS


@dataclass(frozen=True)
class EnergyModel:
    """Per-event energies in picojoules."""

    #: Wire transport per bit per millimetre.
    wire_pj_per_bit_mm: float = 0.08
    #: One buffer write + read per bit (input-queued router).
    buffer_rw_pj_per_bit: float = 0.012
    #: Mux/pass-through stage per bit (bufferless station).
    station_pj_per_bit: float = 0.003
    #: Allocation/arbitration per flit (buffered router only).
    allocation_pj_per_flit: float = 1.5
    #: Die-to-die PHY crossing per bit.
    d2d_pj_per_bit: float = 0.5

    def bufferless_hop_pj(self, hop_mm: float, bits: int = FLIT_BITS) -> float:
        """One stop-to-stop hop through a cross station."""
        return bits * (self.wire_pj_per_bit_mm * hop_mm + self.station_pj_per_bit)

    def buffered_hop_pj(self, hop_mm: float, bits: int = FLIT_BITS) -> float:
        """One router-to-router hop in an input-queued mesh."""
        return (bits * (self.wire_pj_per_bit_mm * hop_mm
                        + self.buffer_rw_pj_per_bit)
                + self.allocation_pj_per_flit)

    def d2d_crossing_pj(self, bits: int = FLIT_BITS) -> float:
        return bits * self.d2d_pj_per_bit


DEFAULT_ENERGY = EnergyModel()


def fabric_energy_joules(
    stats: FabricStats,
    mean_hops: float,
    hop_mm: float,
    buffered: bool,
    d2d_fraction: float = 0.0,
    model: EnergyModel = DEFAULT_ENERGY,
) -> float:
    """Transport energy of everything a fabric delivered.

    ``mean_hops`` and ``hop_mm`` characterize the topology; the caller
    measures or derives them.  ``d2d_fraction`` is the fraction of
    messages that crossed a die-to-die link.
    """
    if mean_hops < 0 or hop_mm < 0:
        raise ValueError("hops and hop length must be non-negative")
    total_bits = stats.delivered_bytes * 8
    if buffered:
        # Wire + buffer write/read per bit-hop, allocation per flit-hop.
        energy_pj = (total_bits * mean_hops
                     * (model.wire_pj_per_bit_mm * hop_mm
                        + model.buffer_rw_pj_per_bit)
                     + model.allocation_pj_per_flit * stats.delivered * mean_hops)
    else:
        energy_pj = total_bits * mean_hops * (
            model.wire_pj_per_bit_mm * hop_mm + model.station_pj_per_bit
        )
    energy_pj += total_bits * d2d_fraction * model.d2d_pj_per_bit
    return energy_pj * 1e-12
