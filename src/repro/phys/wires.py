"""Wire metal fabrics — Table 4 of the paper.

Two implementations of the NoC's connection fabric:

- the **high-density** Mx-My fabric: minimal width/pitch, but a flit
  jumps only 600 µm per 3 GHz cycle, the wires are nearly continuous
  metal, and nothing can be placed under them (Figure 6);
- the **high-speed** My fabric: 3x width, 3.5x pitch, 2.5x bus width,
  1800 µm jumps, and 200 µm stride slots between wire groups that SRAM
  blocks can occupy.

"Distance per cycle" — the paper's co-design metric — is the jump
distance; everything else in this package derives from it.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.params import NOC_FREQ_HZ


@dataclass(frozen=True)
class WireFabric:
    """One wire-fabric implementation option (a Table 4 row)."""

    name: str
    metal_layers: str
    #: Geometry relative to the high-density baseline.
    rel_width: float
    rel_pitch: float
    rel_bus_width: float
    #: Distance a flit travels in one cycle at the 3 GHz design point.
    jump_um_at_3ghz: float
    #: Gap between wire groups usable by other blocks (0 = continuous).
    stride_um: float
    #: What may be placed under/over the fabric.
    over: str

    @property
    def blocks_placement(self) -> bool:
        return self.stride_um == 0

    def track_pitch_um(self, base_pitch_um: float = 0.1) -> float:
        """Physical pitch of one wire track."""
        return base_pitch_um * self.rel_pitch


#: Table 4, row 1.
HIGH_DENSITY = WireFabric(
    name="high-density",
    metal_layers="Mx-My",
    rel_width=1.0,
    rel_pitch=1.0,
    rel_bus_width=1.0,
    jump_um_at_3ghz=600.0,
    stride_um=0.0,
    over="nothing",
)

#: Table 4, row 2.
HIGH_SPEED = WireFabric(
    name="high-speed",
    metal_layers="My",
    rel_width=3.0,
    rel_pitch=3.5,
    rel_bus_width=2.5,
    jump_um_at_3ghz=1800.0,
    stride_um=200.0,
    over="SRAM",
)


def distance_per_cycle_um(fabric: WireFabric, freq_hz: float = NOC_FREQ_HZ) -> float:
    """Jump distance at ``freq_hz``.

    RC-limited wires: reachable distance scales inversely with frequency
    around the characterized 3 GHz point.
    """
    if freq_hz <= 0:
        raise ValueError("frequency must be positive")
    return fabric.jump_um_at_3ghz * (3.0e9 / freq_hz)


def cycles_for_distance(
    fabric: WireFabric, distance_um: float, freq_hz: float = NOC_FREQ_HZ
) -> int:
    """Pipeline stages (== ring stops) needed to cover ``distance_um``."""
    if distance_um < 0:
        raise ValueError("distance must be non-negative")
    jump = distance_per_cycle_um(fabric, freq_hz)
    stages = int(-(-distance_um // jump)) if distance_um else 0
    return max(stages, 1) if distance_um > 0 else 0


def wire_track_area_um2(
    fabric: WireFabric,
    length_um: float,
    bus_bits: int,
    base_pitch_um: float = 0.1,
) -> float:
    """Silicon area occupied by a ``bus_bits``-wide bundle of this fabric.

    High-speed wires individually cost more area per bit, but carry
    2.5x the bus per routing channel and free their stride slots for
    SRAM — the Figure 6 trade-off.
    """
    tracks = bus_bits / fabric.rel_bus_width
    return tracks * fabric.track_pitch_um(base_pitch_um) * length_um


def usable_stride_area_um2(fabric: WireFabric, length_um: float,
                           channel_height_um: float = 50.0) -> float:
    """Area under the fabric recoverable for SRAM placement."""
    if fabric.stride_um == 0:
        return 0.0
    jump = fabric.jump_um_at_3ghz
    slots = int(length_um // jump)
    return slots * fabric.stride_um * channel_height_um
