"""Static topology/config validation — run before any simulation.

:meth:`repro.core.config.TopologySpec.validate` raises on the *first*
structural error; this validator instead collects every problem it can
find, works on raw JSON dicts (so a broken saved topology is reported
rather than crashing deserialization), and adds the deeper checks a
spec-level ``validate()`` cannot do alone:

- dangling or mismatched RBRG-L1/L2 bridge endpoints;
- stations unreachable from part of the network (rings in different
  connected components of the bridge graph — within one ring, even a
  half ring reaches every stop because direction-constrained travel
  still cycles the whole ring);
- zero-depth inject/eject queues and other impossible tuning values;
- inter-chiplet ring cycles with SWAP disabled — statically
  deadlock-prone per Section 4.4: any RBRG-L2 closes a cyclic channel
  dependency between the rings it joins, so with neither SWAP nor
  escape slots there is no recovery path once both sides saturate;
- reliability misconfigurations: retry enabled without CRC (nothing can
  trigger a retry), an explicit replay buffer smaller than the link
  round trip (acks cannot return before the buffer chokes the link),
  and fault models attached to bridges without a die-to-die link.

Scenario files are either a bare topology dict (the
:mod:`repro.core.serialize` format) or ``{"topology": {...},
"config": {...}}`` where the config section carries
:class:`repro.core.config.MultiRingConfig` fields (with ``queues`` as a
nested :class:`repro.params.QueueParams` dict).
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.core.config import MultiRingConfig, TopologySpec
from repro.lint.findings import Finding, Severity
from repro.params import QueueParams

#: MultiRingConfig fields a scenario's "config" section may set.
_CONFIG_KEYS = {
    "eject_drain_per_cycle",
    "enable_itags",
    "enable_etags",
    "enable_swap",
    "escape_slot_period",
    "bridge_route_penalty",
    "lanes_per_direction",
    "parallel_step",
    "parallel_workers",
    "parallel_window",
}

_QUEUE_KEYS = {
    "inject_queue_depth",
    "eject_queue_depth",
    "bridge_rx_depth",
    "bridge_tx_depth",
    "bridge_reserved_tx",
    "itag_threshold",
    "swap_detect_threshold",
    "swap_exit_threshold",
}

#: LinkReliabilityConfig fields a scenario's "reliability" section may set.
_RELIABILITY_KEYS = {
    "enable_crc",
    "enable_retry",
    "retry_limit",
    "replay_depth",
    "ack_latency",
}


def _err(rule: str, message: str, path: Optional[str] = None) -> Finding:
    return Finding(rule=rule, message=message, severity=Severity.ERROR,
                   path=path)


def _warn(rule: str, message: str, path: Optional[str] = None) -> Finding:
    return Finding(rule=rule, message=message, severity=Severity.WARN,
                   path=path)


#: Keys a topology dict may carry (the repro.core.serialize format).
_TOPOLOGY_KEYS = {"version", "rings", "nodes", "bridges"}


def _section_entries(raw: dict, section: str, path: Optional[str],
                     findings: List[Finding]) -> List[dict]:
    """The dict entries of one topology section, with type guards.

    A section that is not a list, or a list entry that is not an object,
    becomes a structured ``malformed-topology`` finding instead of an
    ``AttributeError`` traceback further down the collector.
    """
    value = raw.get(section, [])
    if not isinstance(value, list):
        findings.append(_err(
            "malformed-topology",
            f"the '{section}' section must be a list of objects "
            f"(got {type(value).__name__})", path))
        return []
    entries = []
    for i, entry in enumerate(value):
        if not isinstance(entry, dict):
            findings.append(_err(
                "malformed-topology",
                f"{section}[{i}] must be an object "
                f"(got {type(entry).__name__})", path))
            continue
        entries.append(entry)
    return entries


def validate_topology_dict(raw: dict, path: Optional[str] = None) -> List[Finding]:
    """Structural checks on a raw topology dict; collects every problem."""
    findings: List[Finding] = []
    for key in sorted(set(raw) - _TOPOLOGY_KEYS):
        findings.append(_err(
            "unknown-topology-key",
            f"unknown topology key '{key}' (known: "
            f"{', '.join(sorted(_TOPOLOGY_KEYS))})", path))
    rings = _section_entries(raw, "rings", path, findings)
    nodes = _section_entries(raw, "nodes", path, findings)
    bridges = _section_entries(raw, "bridges", path, findings)
    if not rings:
        findings.append(_err("empty-topology", "topology has no rings", path))
        return findings

    nstops: Dict[int, int] = {}
    for ring in rings:
        rid = ring.get("ring_id")
        if rid in nstops:
            findings.append(_err("duplicate-id", f"duplicate ring id {rid}", path))
            continue
        stops = ring.get("nstops", 0)
        if not isinstance(stops, int) or stops < 2:
            findings.append(_err(
                "ring-too-small",
                f"ring {rid} has {stops!r} stops; a ring needs at least 2",
                path))
            stops = max(2, stops if isinstance(stops, int) else 2)
        lanes = ring.get("lanes")
        if lanes is not None and (not isinstance(lanes, int) or lanes < 1):
            findings.append(_err(
                "bad-lane-count",
                f"ring {rid} lane override {lanes!r} must be a positive int",
                path))
        nstops[rid] = stops

    stop_load: Dict[Tuple[int, int], int] = {}
    seen_nodes: Set[int] = set()
    for placement in nodes:
        nid = placement.get("node")
        if nid in seen_nodes:
            findings.append(_err("duplicate-id", f"duplicate node id {nid}", path))
        seen_nodes.add(nid)
        ring = placement.get("ring")
        stop = placement.get("stop", -1)
        if ring not in nstops:
            findings.append(_err(
                "dangling-node",
                f"node {nid} placed on unknown ring {ring}", path))
            continue
        if not isinstance(stop, int) or not 0 <= stop < nstops[ring]:
            findings.append(_err(
                "dangling-node",
                f"node {nid} stop {stop!r} out of range on ring {ring} "
                f"(0..{nstops[ring] - 1})", path))
            continue
        key = (ring, stop)
        stop_load[key] = stop_load.get(key, 0) + 1

    seen_bridges: Set[int] = set()
    for bridge in bridges:
        bid = bridge.get("bridge_id")
        if bid in seen_bridges:
            findings.append(_err("duplicate-id", f"duplicate bridge id {bid}", path))
        seen_bridges.add(bid)
        level = bridge.get("level")
        if level not in (1, 2):
            findings.append(_err(
                "bad-bridge-level",
                f"bridge {bid} level {level!r}; must be 1 (RBRG-L1) or 2 "
                "(RBRG-L2)", path))
        link = bridge.get("link_latency", 0)
        if level == 1 and link not in (0, None):
            findings.append(_err(
                "bad-bridge-level",
                f"RBRG-L1 bridge {bid} declares a die-to-die link latency "
                f"of {link!r}; L1 bridges are intra-chiplet", path))
        if isinstance(link, int) and link < 0:
            findings.append(_err(
                "bad-bridge-level",
                f"bridge {bid} has negative link latency {link}", path))
        ring_a, ring_b = bridge.get("ring_a"), bridge.get("ring_b")
        if ring_a == ring_b and ring_a is not None:
            findings.append(_err(
                "self-bridge",
                f"bridge {bid} joins ring {ring_a} to itself", path))
        dangling = False
        for end, (ring, stop) in (("a", (ring_a, bridge.get("stop_a", -1))),
                                  ("b", (ring_b, bridge.get("stop_b", -1)))):
            if ring not in nstops:
                findings.append(_err(
                    "dangling-bridge-endpoint",
                    f"bridge {bid} endpoint {end} touches unknown ring "
                    f"{ring}", path))
                dangling = True
                continue
            if not isinstance(stop, int) or not 0 <= stop < nstops[ring]:
                findings.append(_err(
                    "dangling-bridge-endpoint",
                    f"bridge {bid} endpoint {end} stop {stop!r} out of "
                    f"range on ring {ring} (0..{nstops[ring] - 1})", path))
                dangling = True
                continue
            key = (ring, stop)
            stop_load[key] = stop_load.get(key, 0) + 1
        if dangling:
            continue

    for (ring, stop), load in sorted(stop_load.items()):
        if load > 2:
            findings.append(_err(
                "stop-overload",
                f"stop ({ring},{stop}) hosts {load} interfaces; a cross "
                "station has at most two node interfaces", path))

    if not any(f.is_error for f in findings):
        findings.extend(_reachability(raw, nstops, path))
    return findings


def _reachability(raw: dict, nstops: Dict[int, int],
                  path: Optional[str]) -> List[Finding]:
    """Rings in different components of the bridge graph cannot exchange
    traffic; every node on a minority component is an unreachable station."""
    parent = {rid: rid for rid in nstops}

    def find(x: int) -> int:
        while parent[x] != x:
            parent[x] = parent[parent[x]]
            x = parent[x]
        return x

    for bridge in raw.get("bridges", []):
        a, b = find(bridge["ring_a"]), find(bridge["ring_b"])
        if a != b:
            parent[a] = b

    populated: Dict[int, List[int]] = {}
    for placement in raw.get("nodes", []):
        populated.setdefault(find(placement["ring"]), []).append(
            placement["node"])
    if len(populated) <= 1:
        return []
    components = sorted(populated.values(), key=len, reverse=True)
    return [
        _err("unreachable-station",
             f"nodes {comp} are on rings with no bridge path to the rest "
             "of the network; no route exists to or from them", path)
        for comp in components[1:]
    ]


def validate_config(
    config: MultiRingConfig,
    has_bridges: bool = True,
    has_l2_bridges: bool = False,
    path: Optional[str] = None,
    spec: Optional[TopologySpec] = None,
) -> List[Finding]:
    """Tuning-value checks, including the §4.4 static deadlock condition.

    The inter-chiplet-cycle rule delegates to the channel-dependency
    analyzer in :mod:`repro.verify.cdg`; pass a structurally valid
    ``spec`` to get exact ring/bridge cycle detail in the finding (with
    ``spec=None`` the rule falls back to the legacy boolean check on
    ``has_l2_bridges``).
    """
    findings: List[Finding] = []
    queues = config.queues
    for name in ("inject_queue_depth", "eject_queue_depth"):
        if getattr(queues, name) < 1:
            findings.append(_err(
                "zero-depth-queue",
                f"{name} is {getattr(queues, name)}; stations cannot "
                "accept or deliver a single flit", path))
    if has_bridges:
        for name in ("bridge_rx_depth", "bridge_tx_depth"):
            if getattr(queues, name) < 1:
                findings.append(_err(
                    "zero-depth-queue",
                    f"{name} is {getattr(queues, name)}; bridges cannot "
                    "forward any flit", path))
    if config.eject_drain_per_cycle < 1:
        findings.append(_err(
            "zero-depth-queue",
            "eject_drain_per_cycle is "
            f"{config.eject_drain_per_cycle}; delivered flits would sit "
            "in eject queues forever", path))
    if config.enable_itags and queues.itag_threshold < 1:
        findings.append(_err(
            "bad-threshold",
            f"itag_threshold is {queues.itag_threshold}; must be >= 1",
            path))
    if config.escape_slot_period < 0:
        findings.append(_err(
            "bad-threshold",
            f"escape_slot_period is {config.escape_slot_period}; must be "
            ">= 0 (0 disables escape slots)", path))
    if config.engine not in ("auto", "ref", "skip", "dense"):
        findings.append(_err(
            "bad-engine",
            f"engine is {config.engine!r}; must be one of "
            "auto/ref/skip/dense (see docs/PERFORMANCE.md)", path))
    if config.engine_check_every < 1:
        findings.append(_err(
            "bad-threshold",
            f"engine_check_every is {config.engine_check_every}; the "
            "auto selector needs a cadence of >= 1 cycle", path))
    if not (0.0 <= config.dense_exit_occupancy
            <= config.dense_enter_occupancy <= 1.0):
        findings.append(_err(
            "bad-threshold",
            "dense occupancy thresholds must satisfy 0 <= "
            f"dense_exit_occupancy ({config.dense_exit_occupancy}) <= "
            f"dense_enter_occupancy ({config.dense_enter_occupancy}) "
            "<= 1; an inverted band makes the auto selector thrash "
            "materialization every check", path))
    if config.parallel_workers < 0:
        findings.append(_err(
            "bad-threshold",
            f"parallel_workers is {config.parallel_workers}; must be "
            ">= 0 (0 = one worker per ring, capped at the CPU count)",
            path))
    if config.parallel_window < 0:
        findings.append(_err(
            "bad-threshold",
            f"parallel_window is {config.parallel_window}; must be >= 0 "
            "(0 derives the window from the cut-bridge latencies)", path))
    if config.parallel_step:
        if config.reliability is not None:
            findings.append(_warn(
                "parallel-serial-fallback",
                "parallel_step is set but the reliable link layer is "
                "enabled; the parallel stepper cannot split ack/replay "
                "link state and will always fall back serial", path))
        if spec is not None and len(spec.rings) < 2:
            findings.append(_warn(
                "parallel-serial-fallback",
                "parallel_step is set on a single-ring topology; there "
                "is nothing to partition and the stepper will always "
                "fall back serial", path))

    if has_l2_bridges:
        if config.enable_swap:
            if queues.swap_detect_threshold < 1:
                findings.append(_err(
                    "bad-threshold",
                    "swap_detect_threshold is "
                    f"{queues.swap_detect_threshold}; SWAP could never "
                    "trigger", path))
            if queues.bridge_reserved_tx < 1:
                findings.append(_err(
                    "zero-depth-queue",
                    "bridge_reserved_tx is "
                    f"{queues.bridge_reserved_tx}; DRM has no reserved "
                    "buffer to absorb a deadlocked flit", path))
        # Deferred import: repro.verify builds on the lint findings
        # types, so the validator must not import it at module load.
        from repro.verify.cdg import interchiplet_deadlock_findings
        findings.extend(interchiplet_deadlock_findings(
            config, spec=spec, has_l2_bridges=has_l2_bridges, path=path))
    if not config.enable_etags:
        findings.append(_warn(
            "unbounded-deflection",
            "E-tags disabled (ablation only): deflection count is "
            "unbounded and the one-lap guarantee does not hold", path))
    if not config.enable_itags:
        findings.append(_warn(
            "starvation-possible",
            "I-tags disabled (ablation only): a station can starve "
            "under continuous upstream traffic", path))
    return findings


def validate_reliability(
    reliability,
    l2_link_latencies: Sequence[int] = (),
    path: Optional[str] = None,
) -> List[Finding]:
    """Reliable-link-layer misconfiguration checks.

    ``reliability`` is a :class:`repro.faults.link.LinkReliabilityConfig`
    (or None, which validates trivially); ``l2_link_latencies`` are the
    die-to-die link latencies of the topology's RBRG-L2 bridges, used to
    compare an explicit replay depth against the worst link round trip.
    """
    findings: List[Finding] = []
    if reliability is None:
        return findings
    if reliability.enable_retry and not reliability.enable_crc:
        findings.append(_err(
            "retry-without-crc",
            "retry is enabled but CRC checking is disabled: a NAK can "
            "only come from a CRC mismatch, so the replay machinery can "
            "never trigger and corrupted flits are delivered undetected",
            path))
    if not l2_link_latencies:
        findings.append(_warn(
            "reliability-without-l2",
            "a reliability config is set but the topology has no RBRG-L2 "
            "bridge; the link layer protects die-to-die links only", path))
        return findings
    if reliability.enable_retry and reliability.replay_depth > 0:
        worst = max(l2_link_latencies)
        need = reliability.round_trip(worst)
        if reliability.replay_depth < need:
            findings.append(_err(
                "replay-buffer-too-small",
                f"replay_depth {reliability.replay_depth} is smaller than "
                f"the link round trip ({need} cycles at link latency "
                f"{worst}): every in-flight flit occupies a replay slot "
                "until its ack returns, so the buffer backpressures the "
                "link before the first ack can arrive (set replay_depth=0 "
                "to size it automatically)", path))
    return findings


def validate_spec(
    spec: TopologySpec,
    config: Optional[MultiRingConfig] = None,
    path: Optional[str] = None,
) -> List[Finding]:
    """Validate an in-memory spec (and optional config) without raising."""
    from repro.core.serialize import topology_to_dict

    spec_ok = True
    try:
        raw = topology_to_dict(spec)
    except ValueError:
        spec_ok = False
        # Spec too broken for the serializer's own validate(); rebuild the
        # dict by hand so the collector still reports everything.
        raw = {
            "rings": [
                {"ring_id": r.ring_id, "nstops": r.nstops,
                 "bidirectional": r.bidirectional, "lanes": r.lanes}
                for r in spec.rings
            ],
            "nodes": [
                {"node": p.node, "ring": p.ring, "stop": p.stop}
                for p in spec.nodes
            ],
            "bridges": [
                {"bridge_id": b.bridge_id, "level": b.level,
                 "ring_a": b.ring_a, "stop_a": b.stop_a,
                 "ring_b": b.ring_b, "stop_b": b.stop_b,
                 "link_latency": b.link_latency}
                for b in spec.bridges
            ],
        }
    findings = validate_topology_dict(raw, path)
    if config is not None:
        findings.extend(validate_config(
            config,
            has_bridges=bool(spec.bridges),
            has_l2_bridges=any(b.level == 2 for b in spec.bridges),
            path=path,
            spec=spec if spec_ok else None,
        ))
        findings.extend(validate_reliability(
            config.reliability,
            [b.link_latency for b in spec.bridges if b.level == 2],
            path=path,
        ))
    return findings


def _reliability_from_dict(raw: dict, path: Optional[str],
                           findings: List[Finding]):
    """Build a LinkReliabilityConfig from a scenario's config section."""
    from repro.faults.link import LinkReliabilityConfig

    kwargs = {}
    for key, value in raw.items():
        if key not in _RELIABILITY_KEYS:
            findings.append(_err(
                "unknown-config-key",
                f"unknown reliability key '{key}' (known: "
                f"{', '.join(sorted(_RELIABILITY_KEYS))})", path))
        else:
            kwargs[key] = value
    try:
        return LinkReliabilityConfig(**kwargs)
    except (TypeError, ValueError) as exc:
        findings.append(_err(
            "bad-threshold", f"invalid reliability config: {exc}", path))
        return None


def _config_from_dict(raw: dict, path: Optional[str],
                      findings: List[Finding]) -> MultiRingConfig:
    kwargs = {}
    queue_kwargs = {}
    if not isinstance(raw, dict):
        findings.append(_err(
            "unknown-config-key",
            "the 'config' section must be an object "
            f"(got {type(raw).__name__})", path))
        return MultiRingConfig()
    for key, value in raw.items():
        if key == "queues":
            if not isinstance(value, dict):
                findings.append(_err(
                    "unknown-config-key",
                    "the 'queues' config section must be an object "
                    f"(got {type(value).__name__})", path))
                continue
            for qkey, qvalue in value.items():
                if qkey not in _QUEUE_KEYS:
                    findings.append(_err(
                        "unknown-config-key",
                        f"unknown queue parameter '{qkey}' (known: "
                        f"{', '.join(sorted(_QUEUE_KEYS))})", path))
                else:
                    queue_kwargs[qkey] = qvalue
        elif key == "reliability":
            if isinstance(value, dict):
                kwargs["reliability"] = _reliability_from_dict(
                    value, path, findings)
            else:
                findings.append(_err(
                    "unknown-config-key",
                    "the 'reliability' config section must be an object "
                    f"(got {type(value).__name__})", path))
        elif key not in _CONFIG_KEYS:
            findings.append(_err(
                "unknown-config-key",
                f"unknown config key '{key}' (known: "
                f"{', '.join(sorted(_CONFIG_KEYS | {'queues', 'reliability'}))})",
                path))
        else:
            kwargs[key] = value
    return MultiRingConfig(queues=QueueParams(**queue_kwargs), **kwargs)


def _validate_faults_section(
    faults_raw, bridges, path: Optional[str], findings: List[Finding]
) -> None:
    """Check a scenario's top-level ``faults`` list of model dicts."""
    from repro.faults.models import model_from_dict

    if not isinstance(faults_raw, list):
        findings.append(_err(
            "unknown-fault-model",
            "the 'faults' section must be a list of fault-model objects",
            path))
        return
    levels = {b.get("bridge_id"): b.get("level") for b in bridges}
    has_l2 = any(level == 2 for level in levels.values())
    for i, entry in enumerate(faults_raw):
        if not isinstance(entry, dict):
            findings.append(_err(
                "unknown-fault-model",
                f"faults[{i}] must be an object with a 'model' key", path))
            continue
        try:
            model_from_dict(entry)
        except ValueError as exc:
            findings.append(_err(
                "unknown-fault-model", f"faults[{i}]: {exc}", path))
        target = entry.get("bridge")
        if target is not None:
            if target not in levels:
                findings.append(_err(
                    "fault-on-non-l2-bridge",
                    f"faults[{i}] targets unknown bridge {target}", path))
            elif levels[target] != 2:
                findings.append(_err(
                    "fault-on-non-l2-bridge",
                    f"faults[{i}] is attached to RBRG-L1 bridge {target}; "
                    "only RBRG-L2 die-to-die links take fault models",
                    path))
        elif not has_l2:
            findings.append(_err(
                "fault-on-non-l2-bridge",
                f"faults[{i}] has no RBRG-L2 bridge to attach to; the "
                "topology has no die-to-die link", path))


def validate_scenario(raw: dict, path: Optional[str] = None) -> List[Finding]:
    """Validate a scenario dict: topology plus optional config section."""
    if "topology" in raw:
        topo_raw = raw["topology"]
        config_raw = raw.get("config", {})
    else:
        topo_raw = raw
        config_raw = {}
    if not isinstance(topo_raw, dict):
        return [_err(
            "malformed-topology",
            "the 'topology' section must be an object "
            f"(got {type(topo_raw).__name__})", path)]
    findings = validate_topology_dict(topo_raw, path)
    config = _config_from_dict(config_raw, path, findings)
    bridges = [b for b in topo_raw.get("bridges", [])
               if isinstance(b, dict)] if isinstance(
                   topo_raw.get("bridges", []), list) else []
    # Best-effort spec for exact CDG cycle detail; a dict too broken to
    # deserialize still gets the boolean fallback via has_l2_bridges.
    spec: Optional[TopologySpec] = None
    try:
        from repro.core.serialize import topology_from_dict
        spec = topology_from_dict(topo_raw)
    except (KeyError, TypeError, ValueError):
        spec = None
    findings.extend(validate_config(
        config,
        has_bridges=bool(bridges),
        has_l2_bridges=any(b.get("level") == 2 for b in bridges),
        path=path,
        spec=spec,
    ))
    findings.extend(validate_reliability(
        config.reliability,
        [b.get("link_latency", 0) for b in bridges if b.get("level") == 2],
        path=path,
    ))
    if "faults" in raw and "topology" in raw:
        _validate_faults_section(raw["faults"], bridges, path, findings)
    return findings


def validate_scenario_file(path: str) -> List[Finding]:
    """Load and validate a scenario/topology JSON file."""
    try:
        with open(path, "r", encoding="utf-8") as fh:
            raw = json.load(fh)
    except (OSError, json.JSONDecodeError) as exc:
        return [_err("unreadable-scenario", f"cannot load: {exc}", path)]
    if not isinstance(raw, dict):
        return [_err("unreadable-scenario",
                     "scenario file must contain a JSON object", path)]
    return validate_scenario(raw, path)
