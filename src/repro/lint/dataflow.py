"""Project-wide interprocedural determinism dataflow analysis.

The per-file AST lint (:mod:`repro.lint.rules`) catches what a single
module betrays about itself: a stray ``import random``, a wall-clock
read.  This analyzer parses the *whole* source tree into a symbol table
and call graph and tracks two things no file-local pass can see — RNG
lineage and process-boundary dataflow — to catch the defect classes
that silently break bit-identical reproducibility across stepping modes
and worker counts:

``rng-not-rooted`` (error)
    A random stream constructed outside the :mod:`repro.sim.rng`
    factories (``random.Random(...)``, ``random.random()``,
    ``numpy.random.default_rng(...)``, ``secrets.*`` — through any
    import alias).  Unlike the per-file ``determinism`` rule, this
    check has no perf-harness exemption: a raw stream in the
    measurement harness still desynchronizes a sweep.

``split-collision`` (error)
    Two :func:`repro.sim.rng.split_rng` derivations from the same
    parent stream with the same constant salt along any call path —
    directly in one function, or through callees that split their RNG
    parameter (tracked with per-function salt summaries propagated to
    a fixpoint over the call graph).  Colliding children are the *same*
    stream: two traffic sources that were meant to be independent draw
    identical sequences.

``process-shared-state`` (error)
    Module-global mutable state reachable from a worker-trampoline
    root — a function dispatched through ``ProcessPoolExecutor``
    ``submit``/``map`` or the resilient sweep dispatchers
    (``run_sweep``/``execute_jobs``), plus the static roots in
    :mod:`repro.perf.workers` and :mod:`repro.perf.resilient`.  A
    module-global RNG is flagged on any access (each pool child forks
    its own copy, so draws depend on worker placement); other mutable
    globals are flagged on *mutation* (a write in a pool child never
    propagates back, so results differ between ``workers=1`` and
    ``workers=N``).  Read-only lookup tables are fine.

``config-mutated-after-handoff`` (error)
    Attribute assignment into a config dataclass (``MultiRingConfig``
    and friends) *after* the object was handed to a fabric/sweep/cache
    sink.  The sweep cache keys on a fingerprint of the config taken at
    handoff; mutating it afterwards desyncs the cache key from the
    behavior it labels.  Mutation through a callee is tracked with
    per-function parameter-mutation summaries.

All four checks are heuristic static analyses: flow-insensitive inside
a function (statement order approximated by line number), best-effort
name resolution through import aliases, and silent on values they
cannot prove anything about (non-constant salts, dynamically chosen
callables).  They are tuned to be quiet on the shipped tree — anything
they do flag is either fixed or explicitly baselined, never ignored.

Findings anchor to source lines and carry the line text as fingerprint
context, and inline ``# repro: allow[rule]`` suppressions apply exactly
as they do for the per-file lint.
"""

from __future__ import annotations

import ast
import os
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.lint.findings import Finding, Severity
from repro.lint.rules import DETERMINISM_EXEMPT, iter_python_files
from repro.lint.suppress import Suppressions

#: Dataflow rule ids, in reporting order.
DATAFLOW_RULES: Tuple[str, ...] = (
    "rng-not-rooted",
    "split-collision",
    "process-shared-state",
    "config-mutated-after-handoff",
)

#: Call-name prefixes that construct an unrooted random stream.
_UNROOTED_PREFIXES = ("random.", "numpy.random.", "secrets.")

#: Functions that dispatch their first argument to worker processes.
_WORKER_DISPATCHERS = {"run_sweep", "execute_jobs", "run_campaign"}

#: Modules whose module-level functions are worker roots by contract
#: (picklable pool entry points), path suffixes.
_WORKER_ROOT_MODULES = ("repro/perf/workers.py",)

#: Named worker-side trampolines (qualified).
_WORKER_ROOT_FUNCTIONS = {
    "repro.perf.resilient.invoke_job",
    "repro.perf.resilient._worker_init",
    "repro.perf.resilient._maybe_chaos",
}

#: Constructor calls producing mutable containers (module-global scan).
_MUTABLE_CTORS = {"list", "dict", "set", "deque", "defaultdict",
                  "OrderedDict", "Counter"}

#: Methods that mutate their receiver (container mutators).
_MUTATOR_METHODS = {"append", "appendleft", "add", "update", "pop",
                    "popleft", "setdefault", "extend", "extendleft",
                    "remove", "discard", "clear", "insert", "sort"}

#: Config-ish class-name suffixes for the handoff check.
_CONFIG_SUFFIXES = ("Config", "Params")
_CONFIG_NAMES = {"BudgetSpec", "QueueParams", "RetryPolicy"}

#: Call-name suffixes that accept a config and fingerprint/freeze it.
_HANDOFF_SUFFIXES = ("Fabric", "Processor", "Package", "System")
_HANDOFF_NAMES = {"run_sweep", "execute_jobs", "run_campaign", "make_key",
                  "analyze_system", "validate_spec", "config_fingerprint"}


def _dotted(node: ast.AST) -> Optional[str]:
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def module_name_for(path: str) -> str:
    """Dotted module name for a source path.

    Paths inside a ``repro/`` tree map to their real import name
    (``.../repro/perf/sweep.py`` -> ``repro.perf.sweep``); anything else
    (test fixtures) maps to its bare stem so fixture files can import
    each other by stem.
    """
    posix = path.replace(os.sep, "/")
    idx = posix.rfind("/repro/")
    if idx >= 0:
        rel = posix[idx + 1:]
    elif posix.startswith("repro/"):
        rel = posix
    else:
        rel = posix.rsplit("/", 1)[-1]
    if rel.endswith(".py"):
        rel = rel[:-3]
    if rel.endswith("/__init__"):
        rel = rel[: -len("/__init__")]
    return rel.replace("/", ".")


@dataclass
class FunctionInfo:
    """One analyzed function (module-level def or class method)."""

    qualname: str
    module: "ModuleInfo"
    node: ast.AST
    params: List[str]
    #: Salt sets this function applies (transitively) to each RNG param,
    #: by param index — the split-collision summary.
    split_salts: Dict[int, Set[object]] = field(default_factory=dict)
    #: Param indices this function attribute-mutates (transitively).
    mutates_params: Set[int] = field(default_factory=set)


@dataclass
class ModuleInfo:
    """Parsed per-module facts feeding the interprocedural passes."""

    path: str
    modname: str
    tree: ast.Module
    source_lines: List[str]
    #: local name -> dotted import target (module or symbol)
    imports: Dict[str, str] = field(default_factory=dict)
    functions: Dict[str, FunctionInfo] = field(default_factory=dict)
    #: global name -> (lineno, description, is_rng)
    mutable_globals: Dict[str, Tuple[int, str, bool]] = field(
        default_factory=dict)


@dataclass
class DataflowReport:
    """Everything one analysis run derived."""

    findings: List[Finding] = field(default_factory=list)
    modules: int = 0
    functions: int = 0
    #: Worker-root qualnames, for the report/debugging.
    roots: List[str] = field(default_factory=list)

    def to_dict(self) -> dict:
        return {
            "findings": [f.to_dict() for f in self.findings],
            "modules": self.modules,
            "functions": self.functions,
            "roots": sorted(self.roots),
        }


class _ImportCollector(ast.NodeVisitor):
    """Union of every import binding in a module (incl. lazy in-function
    imports, which this codebase uses heavily)."""

    def __init__(self, modname: str):
        self.package = modname.rsplit(".", 1)[0] if "." in modname else ""
        self.imports: Dict[str, str] = {}

    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            local = alias.asname or alias.name.split(".")[0]
            target = alias.name if alias.asname else alias.name.split(".")[0]
            self.imports[local] = target

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        module = node.module or ""
        if node.level:
            base = self.package.split(".") if self.package else []
            # one level = current package; each extra level pops one.
            base = base[: len(base) - (node.level - 1)] if node.level > 1 \
                else base
            module = ".".join(base + ([module] if module else []))
        for alias in node.names:
            if alias.name == "*":
                continue
            local = alias.asname or alias.name
            self.imports[local] = (module + "." + alias.name) if module \
                else alias.name


def _collect_functions(mod: ModuleInfo) -> None:
    """Register module-level functions and class methods.

    Nested functions stay part of their parent's body: closures are
    analyzed as the enclosing function (they share its frame, which is
    exactly the aliasing the checks care about).
    """
    for stmt in mod.tree.body:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            qual = f"{mod.modname}.{stmt.name}"
            mod.functions[qual] = FunctionInfo(
                qual, mod, stmt, [a.arg for a in stmt.args.args])
        elif isinstance(stmt, ast.ClassDef):
            for sub in stmt.body:
                if isinstance(sub, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    qual = f"{mod.modname}.{stmt.name}.{sub.name}"
                    params = [a.arg for a in sub.args.args]
                    if params and params[0] in ("self", "cls"):
                        params = params[1:]
                    mod.functions[qual] = FunctionInfo(
                        qual, mod, sub, params)


def _collect_mutable_globals(mod: ModuleInfo, analyzer) -> None:
    for stmt in mod.tree.body:
        targets: List[ast.AST] = []
        value: Optional[ast.AST] = None
        if isinstance(stmt, ast.Assign):
            targets, value = stmt.targets, stmt.value
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            targets, value = [stmt.target], stmt.value
        if value is None:
            continue
        desc = None
        is_rng = False
        if isinstance(value, (ast.List, ast.Dict, ast.Set, ast.ListComp,
                              ast.DictComp, ast.SetComp)):
            desc = f"a {type(value).__name__.lower()} literal"
        elif isinstance(value, ast.Call):
            dotted = analyzer.resolve(mod, value.func) or \
                (_dotted(value.func) or "")
            last = dotted.split(".")[-1]
            if analyzer.is_rng_factory(dotted) or \
                    dotted in ("random.Random",):
                desc, is_rng = f"an RNG stream ({last}(...))", True
            elif last in _MUTABLE_CTORS:
                desc = f"a mutable {last}()"
        if desc is None:
            continue
        for target in targets:
            if isinstance(target, ast.Name):
                mod.mutable_globals[target.id] = (stmt.lineno, desc, is_rng)


class DataflowAnalyzer:
    """The whole-program analysis: build, then :meth:`run`."""

    def __init__(self, sources: Dict[str, str],
                 suppressions: Optional[Dict[str, Suppressions]] = None):
        self.suppressions = suppressions or {}
        self.modules: Dict[str, ModuleInfo] = {}
        self.symbols: Dict[str, FunctionInfo] = {}
        self.findings: List[Finding] = []
        self._parse_errors: List[str] = []
        for path in sorted(sources):
            source = sources[path]
            try:
                tree = ast.parse(source, filename=path)
            except SyntaxError:
                # The per-file lint already reports a ``syntax`` finding;
                # the project analysis just proceeds without the module.
                self._parse_errors.append(path)
                continue
            modname = module_name_for(path)
            mod = ModuleInfo(path=path, modname=modname, tree=tree,
                             source_lines=source.splitlines())
            collector = _ImportCollector(modname)
            collector.visit(tree)
            mod.imports = collector.imports
            _collect_functions(mod)
            self.modules[path] = mod
        for mod in self.modules.values():
            for qual, info in mod.functions.items():
                self.symbols[qual] = info
            _collect_mutable_globals(mod, self)

    # -- name resolution --------------------------------------------------

    def resolve(self, mod: ModuleInfo, func: ast.AST) -> Optional[str]:
        """Best-effort dotted name of a call target through imports."""
        dotted = _dotted(func)
        if dotted is None:
            return None
        head, _, rest = dotted.partition(".")
        if head in mod.imports:
            base = mod.imports[head]
            return base + ("." + rest if rest else "")
        # A bare name defined in this module?
        if not rest and f"{mod.modname}.{head}" in mod.functions:
            return f"{mod.modname}.{head}"
        # An unresolved head is a local/attribute, not a module: a local
        # variable named ``random`` must not look like the stdlib.
        return None

    def lookup(self, dotted: Optional[str]) -> Optional[FunctionInfo]:
        if dotted is None:
            return None
        return self.symbols.get(dotted)

    @staticmethod
    def is_rng_factory(dotted: Optional[str]) -> bool:
        if not dotted:
            return False
        return (dotted.startswith("repro.")
                and dotted.split(".")[-1] in ("make_rng", "split_rng"))

    @staticmethod
    def is_split(dotted: Optional[str]) -> bool:
        return bool(dotted) and dotted.startswith("repro.") \
            and dotted.split(".")[-1] == "split_rng"

    # -- emission ---------------------------------------------------------

    def _emit(self, mod: ModuleInfo, node: ast.AST, rule: str,
              message: str) -> None:
        line = getattr(node, "lineno", 0)
        supp = self.suppressions.get(mod.path)
        if supp is not None and supp.is_suppressed(line, rule):
            return
        context = None
        if 0 < line <= len(mod.source_lines):
            context = mod.source_lines[line - 1]
        self.findings.append(Finding(
            rule=rule, message=message, severity=Severity.ERROR,
            path=mod.path, line=line,
            col=getattr(node, "col_offset", 0), context=context))

    # -- check 1: unrooted RNG streams ------------------------------------

    def _check_rng_roots(self) -> None:
        for mod in self.modules.values():
            posix = mod.path.replace(os.sep, "/")
            if any(posix.endswith(s) for s in DETERMINISM_EXEMPT):
                continue
            for node in ast.walk(mod.tree):
                if not isinstance(node, ast.Call):
                    continue
                dotted = self.resolve(mod, node.func)
                if dotted is None:
                    continue
                if dotted == "random.Random" or any(
                        dotted.startswith(p) for p in _UNROOTED_PREFIXES):
                    self._emit(
                        mod, node, "rng-not-rooted",
                        f"'{dotted}' constructs a random stream outside "
                        "the repro.sim.rng factories; root every stream "
                        "in make_rng/split_rng so runs stay a pure "
                        "function of the seed (this project-wide check "
                        "has no perf-harness exemption)")

    # -- check 2: split_rng salt collisions -------------------------------

    def _rng_vars(self, info: FunctionInfo) -> Dict[str, Tuple[str, object]]:
        """Map of local names to RNG origins: ('param', i) or ('local', line)."""
        origins: Dict[str, Tuple[str, object]] = {}
        for i, name in enumerate(info.params):
            origins[name] = ("param", i)
        for node in ast.walk(info.node):
            if isinstance(node, ast.Assign) and isinstance(node.value,
                                                           ast.Call):
                dotted = self.resolve(info.module, node.value.func)
                if self.is_rng_factory(dotted):
                    for target in node.targets:
                        if isinstance(target, ast.Name):
                            origins[target.id] = ("local", node.lineno)
        return origins

    def _split_events(
        self, info: FunctionInfo, origins: Dict[str, Tuple[str, object]],
        use_summaries: bool,
    ) -> List[Tuple[Tuple[str, object], object, int, str]]:
        """(origin, salt, lineno, how) for every constant-salt derivation."""
        events = []
        for node in ast.walk(info.node):
            if not isinstance(node, ast.Call):
                continue
            dotted = self.resolve(info.module, node.func)
            if self.is_split(dotted):
                if (len(node.args) >= 2
                        and isinstance(node.args[0], ast.Name)
                        and node.args[0].id in origins
                        and isinstance(node.args[1], ast.Constant)):
                    events.append((origins[node.args[0].id],
                                   node.args[1].value, node.lineno,
                                   "split_rng here"))
                continue
            if not use_summaries:
                continue
            callee = self.lookup(dotted)
            if callee is None or not callee.split_salts:
                continue
            for pos, arg in enumerate(node.args):
                if isinstance(arg, ast.Name) and arg.id in origins:
                    for salt in callee.split_salts.get(pos, ()):
                        events.append((origins[arg.id], salt, node.lineno,
                                       f"via {callee.qualname}()"))
        return events

    def _compute_split_summaries(self) -> None:
        """Fixpoint over the call graph: salts each fn splits per param."""
        changed = True
        rounds = 0
        while changed and rounds < 10:
            changed = False
            rounds += 1
            for info in self.symbols.values():
                origins = self._rng_vars(info)
                new: Dict[int, Set[object]] = {}
                for origin, salt, _, _ in self._split_events(
                        info, origins, use_summaries=True):
                    if origin[0] == "param":
                        new.setdefault(origin[1], set()).add(salt)
                if new != info.split_salts:
                    info.split_salts = new
                    changed = True

    def _check_split_collisions(self) -> None:
        self._compute_split_summaries()
        for info in self.symbols.values():
            origins = self._rng_vars(info)
            events = self._split_events(info, origins, use_summaries=True)
            seen: Dict[Tuple[Tuple[str, object], object],
                       Tuple[int, str]] = {}
            reported = set()
            for origin, salt, lineno, how in sorted(
                    events, key=lambda e: e[2]):
                key = (origin, salt)
                if key not in seen:
                    seen[key] = (lineno, how)
                elif key not in reported:
                    first_line, first_how = seen[key]
                    reported.add(key)
                    anchor = ast.Constant(value=0)
                    anchor.lineno = lineno
                    anchor.col_offset = 0
                    self._emit(
                        info.module, anchor, "split-collision",
                        f"split_rng salt {salt!r} derives the same child "
                        f"stream twice from one parent ({first_how} at "
                        f"line {first_line}, then {how}): colliding "
                        "children draw identical sequences; give every "
                        "derivation path a distinct salt")
            del reported
        # (non-constant salts and unresolvable parents are ignored: the
        # analysis only reports what it can prove)

    # -- check 3: process-boundary shared state ---------------------------

    def _worker_roots(self) -> Set[str]:
        roots: Set[str] = set()
        for mod in self.modules.values():
            posix = mod.path.replace(os.sep, "/")
            if any(posix.endswith(s) for s in _WORKER_ROOT_MODULES):
                roots.update(q for q, f in mod.functions.items()
                             if "." not in q[len(mod.modname) + 1:])
            for qual in mod.functions:
                if qual in _WORKER_ROOT_FUNCTIONS:
                    roots.add(qual)
            # dynamic roots: fn names handed to pool.submit/map or a
            # sweep dispatcher's first argument.
            pools = self._pool_names(mod)
            for node in ast.walk(mod.tree):
                if not isinstance(node, ast.Call):
                    continue
                fn_arg: Optional[ast.AST] = None
                if isinstance(node.func, ast.Attribute) and \
                        node.func.attr in ("submit", "map"):
                    owner = node.func.value
                    owner_is_pool = (
                        (isinstance(owner, ast.Name)
                         and owner.id in pools)
                        or (isinstance(owner, ast.Call)
                            and (_dotted(owner.func) or "").split(".")[-1]
                            == "ProcessPoolExecutor"))
                    if owner_is_pool and node.args:
                        fn_arg = node.args[0]
                else:
                    dotted = self.resolve(mod, node.func) or ""
                    if dotted.split(".")[-1] in _WORKER_DISPATCHERS \
                            and node.args:
                        fn_arg = node.args[0]
                if isinstance(fn_arg, ast.Name):
                    target = self.resolve(mod, ast.Name(id=fn_arg.id,
                                                        ctx=ast.Load()))
                    if target is None:
                        target = f"{mod.modname}.{fn_arg.id}"
                    if target in self.symbols:
                        roots.add(target)
        return roots

    @staticmethod
    def _pool_names(mod: ModuleInfo) -> Set[str]:
        pools: Set[str] = set()
        for node in ast.walk(mod.tree):
            ctor = None
            if isinstance(node, ast.Assign) and isinstance(node.value,
                                                           ast.Call):
                ctor = (node.value, [t for t in node.targets
                                     if isinstance(t, ast.Name)])
            elif isinstance(node, (ast.With, ast.AsyncWith)):
                for item in node.items:
                    if isinstance(item.context_expr, ast.Call) and \
                            isinstance(item.optional_vars, ast.Name):
                        ctor = (item.context_expr, [item.optional_vars])
            if ctor is None:
                continue
            call, names = ctor
            if (_dotted(call.func) or "").split(".")[-1] == \
                    "ProcessPoolExecutor":
                pools.update(n.id for n in names)
        return pools

    def _callees(self, info: FunctionInfo) -> Set[str]:
        out: Set[str] = set()
        for node in ast.walk(info.node):
            if isinstance(node, ast.Call):
                dotted = self.resolve(info.module, node.func)
                if dotted in self.symbols:
                    out.add(dotted)
                elif isinstance(node.func, ast.Attribute) and \
                        isinstance(node.func.value, ast.Name) and \
                        node.func.value.id == "self":
                    # self.method() in the same class
                    cls = info.qualname.rsplit(".", 2)
                    if len(cls) == 3:
                        cand = f"{cls[0]}.{cls[1]}.{node.func.attr}"
                        if cand in self.symbols:
                            out.add(cand)
        return out

    def _check_process_state(self) -> Set[str]:
        roots = self._worker_roots()
        reachable: Set[str] = set()
        frontier = list(roots)
        while frontier:
            qual = frontier.pop()
            if qual in reachable or qual not in self.symbols:
                continue
            reachable.add(qual)
            frontier.extend(self._callees(self.symbols[qual]))
        for qual in sorted(reachable):
            info = self.symbols[qual]
            mod = info.module
            if not mod.mutable_globals:
                continue
            local_shadows = {a for a in info.params}
            seen_lines: Set[Tuple[int, str]] = set()
            for node in ast.walk(info.node):
                name = None
                is_write = False
                if isinstance(node, ast.Global):
                    for g in node.names:
                        if g in mod.mutable_globals:
                            name, is_write = g, True
                elif isinstance(node, ast.Name) and node.id in \
                        mod.mutable_globals and node.id not in local_shadows:
                    name = node.id
                    is_write = isinstance(node.ctx, (ast.Store, ast.Del))
                elif isinstance(node, ast.Call) and \
                        isinstance(node.func, ast.Attribute) and \
                        node.func.attr in _MUTATOR_METHODS and \
                        isinstance(node.func.value, ast.Name) and \
                        node.func.value.id in mod.mutable_globals and \
                        node.func.value.id not in local_shadows:
                    name, is_write = node.func.value.id, True
                elif isinstance(node, (ast.Subscript, ast.Attribute)) and \
                        isinstance(node.ctx, ast.Store) and \
                        isinstance(node.value, ast.Name) and \
                        node.value.id in mod.mutable_globals and \
                        node.value.id not in local_shadows:
                    name, is_write = node.value.id, True
                if name is None:
                    continue
                glineno, desc, is_rng = mod.mutable_globals[name]
                if not is_rng and not is_write:
                    continue  # read-only lookup tables are fine
                key = (getattr(node, "lineno", 0), name)
                if key in seen_lines:
                    continue
                seen_lines.add(key)
                if is_rng:
                    what = (f"module-global RNG '{name}' (defined line "
                            f"{glineno}) is used by worker-reachable "
                            f"'{qual}': each pool child re-creates its "
                            "own copy, so draws depend on worker "
                            "placement and count")
                else:
                    what = (f"worker-reachable '{qual}' mutates "
                            f"module-global '{name}' ({desc}, line "
                            f"{glineno}): writes in a pool child never "
                            "propagate back, so results differ between "
                            "workers=1 and workers=N")
                self._emit(mod, node, "process-shared-state",
                           what + "; pass state through the point "
                           "payload and return values instead")
        return roots

    # -- check 4: config mutation after handoff ---------------------------

    def _is_config_ctor(self, dotted: Optional[str], raw: str) -> bool:
        name = (dotted or raw).split(".")[-1]
        return name.endswith(_CONFIG_SUFFIXES) or name in _CONFIG_NAMES

    @staticmethod
    def _is_handoff(name: str) -> bool:
        return name.endswith(_HANDOFF_SUFFIXES) or name in _HANDOFF_NAMES

    def _compute_mutation_summaries(self) -> None:
        changed = True
        rounds = 0
        while changed and rounds < 10:
            changed = False
            rounds += 1
            for info in self.symbols.values():
                param_idx = {p: i for i, p in enumerate(info.params)}
                new: Set[int] = set()
                for node in ast.walk(info.node):
                    if isinstance(node, (ast.Attribute,)) and \
                            isinstance(node.ctx, ast.Store) and \
                            isinstance(node.value, ast.Name) and \
                            node.value.id in param_idx:
                        new.add(param_idx[node.value.id])
                    elif isinstance(node, ast.Call):
                        dotted = self.resolve(info.module, node.func)
                        if (_dotted(node.func) == "setattr"
                                and node.args
                                and isinstance(node.args[0], ast.Name)
                                and node.args[0].id in param_idx):
                            new.add(param_idx[node.args[0].id])
                            continue
                        callee = self.lookup(dotted)
                        if callee is None:
                            continue
                        for pos, arg in enumerate(node.args):
                            if isinstance(arg, ast.Name) and \
                                    arg.id in param_idx and \
                                    pos in callee.mutates_params:
                                new.add(param_idx[arg.id])
                if new != info.mutates_params:
                    info.mutates_params = new
                    changed = True

    def _check_config_handoff(self) -> None:
        self._compute_mutation_summaries()
        for info in self.symbols.values():
            mod = info.module
            # config-typed locals: assigned from a *Config ctor, or
            # annotated parameters.
            config_vars: Dict[str, int] = {}
            args_node = getattr(info.node, "args", None)
            if args_node is not None:
                for arg in args_node.args:
                    ann = getattr(arg, "annotation", None)
                    if ann is not None:
                        ann_name = _dotted(ann) or (
                            ann.value if isinstance(ann, ast.Constant)
                            and isinstance(ann.value, str) else "")
                        if ann_name and self._is_config_ctor(
                                None, str(ann_name)):
                            config_vars[arg.arg] = getattr(
                                info.node, "lineno", 0)
            for node in ast.walk(info.node):
                if isinstance(node, ast.Assign) and \
                        isinstance(node.value, ast.Call):
                    dotted = self.resolve(mod, node.value.func)
                    raw = _dotted(node.value.func) or ""
                    if self._is_config_ctor(dotted, raw):
                        for t in node.targets:
                            if isinstance(t, ast.Name):
                                config_vars[t.id] = node.lineno
            if not config_vars:
                continue
            handed: Dict[str, Tuple[int, str]] = {}
            mutations: List[Tuple[str, int, str, ast.AST]] = []
            for node in ast.walk(info.node):
                if isinstance(node, ast.Call):
                    dotted = self.resolve(mod, node.func)
                    raw = _dotted(node.func) or ""
                    last = (dotted or raw).split(".")[-1]
                    callee = self.lookup(dotted)
                    for pos, arg in enumerate(
                            list(node.args)
                            + [kw.value for kw in node.keywords]):
                        if not (isinstance(arg, ast.Name)
                                and arg.id in config_vars):
                            continue
                        if self._is_handoff(last):
                            prev = handed.get(arg.id)
                            if prev is None or node.lineno < prev[0]:
                                handed[arg.id] = (node.lineno, last)
                        if callee is not None and pos < len(node.args) \
                                and pos in callee.mutates_params:
                            mutations.append(
                                (arg.id, node.lineno,
                                 f"via {callee.qualname}()", node))
                    if _dotted(node.func) == "setattr" and node.args and \
                            isinstance(node.args[0], ast.Name) and \
                            node.args[0].id in config_vars:
                        mutations.append((node.args[0].id, node.lineno,
                                          "via setattr(...)", node))
                elif isinstance(node, ast.Attribute) and \
                        isinstance(node.ctx, ast.Store) and \
                        isinstance(node.value, ast.Name) and \
                        node.value.id in config_vars:
                    mutations.append((node.value.id, node.lineno,
                                      f".{node.attr} = ...", node))
            for var, lineno, how, node in mutations:
                handoff = handed.get(var)
                if handoff is None or lineno <= handoff[0]:
                    continue
                self._emit(
                    mod, node, "config-mutated-after-handoff",
                    f"config '{var}' is mutated ({how}) after being "
                    f"handed to {handoff[1]}(...) on line {handoff[0]}: "
                    "the fabric/sweep/cache fingerprinted it at handoff, "
                    "so later mutation desyncs cache keys and recorded "
                    "behavior; build the final config first (or use "
                    "dataclasses.replace for a fresh copy)")

    # -- driver -----------------------------------------------------------

    def run(self) -> DataflowReport:
        self._check_rng_roots()
        self._check_split_collisions()
        roots = self._check_process_state()
        self._check_config_handoff()
        return DataflowReport(
            findings=self.findings,
            modules=len(self.modules),
            functions=len(self.symbols),
            roots=sorted(roots))


def analyze_sources(
    sources: Dict[str, str],
    suppressions: Optional[Dict[str, Suppressions]] = None,
) -> DataflowReport:
    """Analyze in-memory sources (tests and the hypothesis properties)."""
    return DataflowAnalyzer(sources, suppressions).run()


def analyze_paths(
    paths: Iterable[str],
    suppressions: Optional[Dict[str, Suppressions]] = None,
) -> DataflowReport:
    """Analyze every python file under ``paths`` as one program."""
    sources: Dict[str, str] = {}
    for root in paths:
        for filepath in iter_python_files(root):
            if filepath in sources:
                continue
            with open(filepath, "r", encoding="utf-8") as fh:
                sources[filepath] = fh.read()
    return analyze_sources(sources, suppressions)
