"""Opt-in runtime invariant probes for the multi-ring fabric.

The paper's correctness story rests on three invariants the simulator
otherwise exercises only implicitly:

- **flit conservation** — bufferless rings never create or drop a flit:
  every cycle, ``accepted - delivered`` messages are physically present
  in a queue, a lane slot, or a bridge stage;
- **bounded deflection** (Section 4.1.2) — once a flit holds an E-tag
  reservation it circles at most one more lap per competing reservation,
  and competitors are bounded by the ring's slot capacity.  Transient
  bridge backpressure stretches this in practice (the healthy saturated
  Figure-9 bench peaks at ~1.8× slot capacity across seeds), so the
  default bound is four times the slot capacity: a flit whose
  post-reservation laps exceed ``4 × nstops × nlanes`` of its ring is
  livelocked or starved (a SWAP-disabled inter-chiplet deadlock
  manifests exactly this way at runtime, and so does sustained
  oversubscription of a single eject port, where the one-lap argument's
  progress assumption fails);
- **I-tag/E-tag reservation consistency** — every I-tag in a lane points
  to a port that knows it placed one (and vice versa, at most one per
  port and direction), and every E-tag reservation names a message that
  is still in the network.

:class:`FabricInvariantChecker` verifies all three against a
:class:`repro.core.network.MultiRingFabric` and raises a structured
:class:`InvariantViolation` carrying the cycle and station context.  It
only reads fabric state, so a checked run and an unchecked run of the
same seed produce identical statistics.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple


class InvariantViolation(RuntimeError):
    """A runtime invariant failed; carries structured context.

    Attributes:
        rule: short rule name (``flit-conservation``,
            ``deflection-bound``, ``etag-consistency``,
            ``itag-consistency``).
        cycle: simulation cycle at which the check ran.
        context: rule-specific details (ring/stop/msg ids, counts).
    """

    def __init__(self, rule: str, cycle: int, message: str,
                 context: Optional[dict] = None):
        self.rule = rule
        self.cycle = cycle
        self.context = context or {}
        detail = ", ".join(f"{k}={v}" for k, v in sorted(self.context.items()))
        suffix = f" [{detail}]" if detail else ""
        super().__init__(f"cycle {cycle}: [{rule}] {message}{suffix}")


class FabricInvariantChecker:
    """Per-cycle invariant verification for one multi-ring fabric.

    Attach with :meth:`repro.core.network.MultiRingFabric.
    attach_invariant_checker` (the fabric then calls :meth:`check` at the
    end of every :meth:`step`), or register :meth:`check` on a
    :class:`repro.sim.engine.Simulator` via ``register_invariant``.

    ``check_every`` thins the probe for long runs; ``max_extra_laps``
    overrides the per-ring deflection bound (default: four times the
    ring's slot capacity, ``4 × nstops × nlanes``).
    """

    def __init__(
        self,
        fabric,
        check_every: int = 1,
        max_extra_laps: Optional[int] = None,
    ):
        if check_every < 1:
            raise ValueError("check_every must be >= 1")
        self.fabric = fabric
        self.check_every = check_every
        self.max_extra_laps = max_extra_laps
        #: Number of full invariant sweeps performed.
        self.checks_run = 0
        #: High-water mark of post-reservation laps observed (diagnostics).
        self.max_laps_seen = 0
        self._lap_bounds: Dict[int, int] = {
            ring_id: 4 * ring.spec.nstops * len(ring.lanes)
            for ring_id, ring in fabric.rings.items()
        }

    # -- entry points -----------------------------------------------------

    def check(self, cycle: int) -> None:
        """Run every probe; raises :class:`InvariantViolation` on failure."""
        if cycle % self.check_every != 0:
            return
        self.check_conservation(cycle)
        self.check_deflection_bound(cycle)
        self.check_etag_consistency(cycle)
        self.check_itag_consistency(cycle)
        self.checks_run += 1

    # -- individual probes ------------------------------------------------

    def check_conservation(self, cycle: int) -> None:
        """Undelivered, undropped messages must all be physically present.

        ``stats.in_flight`` is ``accepted - delivered - dropped``: the
        reliable link layer's loud drops leave the network, everything
        else must still be in a queue, a lane slot, or a bridge stage.
        """
        stats = self.fabric.stats
        expected = stats.in_flight
        present = self.fabric.occupancy()
        if present != expected:
            verb = "vanished from" if present < expected else "duplicated in"
            raise InvariantViolation(
                "flit-conservation", cycle,
                f"{abs(expected - present)} flit(s) {verb} the network",
                {"accepted": stats.accepted, "delivered": stats.delivered,
                 "dropped": stats.dropped, "in_network": present},
            )

    def check_deflection_bound(self, cycle: int) -> None:
        """No flit may exceed one post-reservation lap per ring slot.

        Walks only the occupied slots via the lane's maintained occupancy
        index (O(flits), not O(nstops)); sorted so the first violation
        reported matches the slot-order walk of earlier revisions.
        """
        for ring_id, ring in self.fabric.rings.items():
            bound = (self.max_extra_laps if self.max_extra_laps is not None
                     else self._lap_bounds[ring_id])
            for lane in ring.lanes:
                flits = lane.flits
                for idx in sorted(flits.occupied):
                    flit = flits[idx]
                    if flit is None:
                        continue
                    laps = flit.laps_deflected
                    if laps > self.max_laps_seen:
                        self.max_laps_seen = laps
                    if laps > bound:
                        raise InvariantViolation(
                            "deflection-bound", cycle,
                            f"flit {flit.msg.msg_id} has circled "
                            f"{laps} laps past its E-tag reservation "
                            f"(bound {bound}); livelock or starvation",
                            {"ring": ring_id,
                             "exit_stop": flit.current_hop.exit_stop,
                             "msg": flit.msg.msg_id,
                             "laps": laps, "bound": bound,
                             "deflections": flit.deflections},
                        )

    def check_etag_consistency(self, cycle: int) -> None:
        """Every E-tag reservation names a message still in the network."""
        in_flight = {f.msg.msg_id for f in self.fabric.flits_in_flight()}
        for ring_id, station, port in self._ports():
            stale = port.etag_reservations - in_flight
            if stale:
                raise InvariantViolation(
                    "etag-consistency", cycle,
                    f"port {port.key} holds E-tag reservation(s) for "
                    "message(s) no longer in the network",
                    {"ring": ring_id, "stop": station.stop,
                     "stale_msgs": sorted(stale)},
                )

    def check_itag_consistency(self, cycle: int) -> None:
        """Lane I-tags and port ``itag_pending`` flags must agree."""
        # (port id, direction) -> number of lane tags pointing at it.
        tag_count: Dict[Tuple[int, int], int] = {}
        for ring_id, ring in self.fabric.rings.items():
            for lane in ring.lanes:
                itags = lane.itags
                for idx in sorted(itags.occupied):
                    port = itags[idx]
                    if port is None:
                        continue
                    station = port.station
                    if station.ring_spec.ring_id != ring_id:
                        raise InvariantViolation(
                            "itag-consistency", cycle,
                            f"lane slot {idx} on ring {ring_id} is "
                            f"reserved by port {port.key} of ring "
                            f"{station.ring_spec.ring_id}",
                            {"ring": ring_id, "slot": idx},
                        )
                    if not port.itag_pending.get(lane.direction, False):
                        raise InvariantViolation(
                            "itag-consistency", cycle,
                            f"lane slot {idx} on ring {ring_id} carries an "
                            f"I-tag for port {port.key}, but the port has "
                            "no pending reservation in that direction",
                            {"ring": ring_id, "slot": idx,
                             "stop": station.stop,
                             "direction": lane.direction},
                        )
                    key = (id(port), lane.direction)
                    tag_count[key] = tag_count.get(key, 0) + 1
                    if tag_count[key] > 1:
                        raise InvariantViolation(
                            "itag-consistency", cycle,
                            f"port {port.key} holds {tag_count[key]} "
                            "I-tags in one direction; at most one slot "
                            "may be reserved at a time",
                            {"ring": ring_id, "stop": station.stop,
                             "direction": lane.direction},
                        )
        for ring_id, station, port in self._ports():
            for direction, pending in port.itag_pending.items():
                if pending and tag_count.get((id(port), direction), 0) == 0:
                    raise InvariantViolation(
                        "itag-consistency", cycle,
                        f"port {port.key} believes it reserved a slot "
                        f"(direction {direction:+d}) but no lane carries "
                        "its I-tag",
                        {"ring": ring_id, "stop": station.stop,
                         "direction": direction},
                    )

    # -- helpers ----------------------------------------------------------

    def _ports(self):
        for ring_id, ring in self.fabric.rings.items():
            for station in ring.stations:
                for port in station.ports:
                    yield ring_id, station, port

    def summary(self) -> str:
        return (f"invariants: {self.checks_run} sweeps, 0 violations, "
                f"max post-reservation laps {self.max_laps_seen}")
