"""AST lint rules tailored to a cycle-accurate simulator.

Generic linters do not know what breaks a simulator.  These rules do:

- ``determinism`` — no ambient randomness or wall-clock reads in sim
  paths.  Every random stream must come from
  :func:`repro.sim.rng.make_rng` so a run is a pure function of its
  seed; ``time.time()`` in a model silently couples results to the host.
  ``numpy`` itself is permitted (the dense stepping tier is built on
  it) but ``numpy.random`` is banned in every spelling — ``import
  numpy.random``, ``from numpy import random``, and attribute use like
  ``np.random.default_rng()`` through any numpy alias — because a
  numpy-seeded stream bypasses ``repro.sim.rng`` exactly like the
  stdlib ``random`` module would.
- ``mutable-default`` — a mutable default argument is shared across all
  calls, which in a simulator aliases state across components.
- ``float-cycle`` — cycle counters are integers.  Assigning a float (or
  a true-division result) to a cycle variable lets ``0.30000000000004``
  creep into ready-times and break cycle-exact comparisons; use ``//``
  or keep float math in reporting-only variables.
- ``bare-except`` — ``except:`` swallows the structured
  :class:`repro.lint.invariants.InvariantViolation` (and
  ``KeyboardInterrupt``), turning a caught correctness bug into silence.
- ``parallel-seeding`` — worker processes and pid-derived seeds belong
  in :mod:`repro.perf` only.  A ``multiprocessing``/process-pool import
  or an ``os.getpid()`` call in a sim path is how "same seed, different
  worker count, different results" bugs are born; parallel sweeps must
  go through :func:`repro.perf.sweep.run_sweep`, which derives every
  point's seed from ``(base_seed, point index)`` before dispatch.
- ``sweep-bare-pool`` — collecting results straight off
  ``ProcessPoolExecutor.map`` outside ``repro/perf/``.  A bare
  ``pool.map`` is all-or-nothing: one worker crash, hang, or OOM
  destroys every completed point and nothing reaches the result cache;
  dispatch through :func:`repro.perf.sweep.run_sweep`, whose resilient
  runner adds per-point timeouts, deterministic retry, pool-crash
  recovery, and journaled resume.
- ``unordered-iteration`` — iterating a ``set`` (a literal, a
  ``set()``/``frozenset()`` call, a set-algebra method result, or a
  local bound to one) inside the order-sensitive simulation packages
  (:data:`ORDER_SENSITIVE_DIRS`: ``repro/{core,fabric,sim,analyze}``).
  Set iteration order depends on insertion history and hash seeding, so
  any simulation state touched in that order diverges between otherwise
  identical runs; iterate ``sorted(...)`` instead.  Plain ``dict``
  iteration is deliberately *not* flagged: dicts preserve insertion
  order (guaranteed since Python 3.7), which is deterministic as long
  as insertions are.

A line can opt out of one rule with a trailing ``# repro: allow[rule]``
comment (the legacy ``# lint: allow[rule]`` spelling still works; see
:mod:`repro.lint.suppress`, which also reports suppressions that never
fire); :data:`DETERMINISM_EXEMPT` files (the RNG helper itself) are
exempt from the determinism rule wholesale, and everything under
:data:`PERF_EXEMPT_DIRS` (the measurement harness, which legitimately
reads wall clocks and spawns workers) is exempt from the determinism,
parallel-seeding, and sweep-bare-pool rules.
"""

from __future__ import annotations

import ast
import os
import re
from typing import Iterable, List, Optional, Sequence, Set, Tuple

from repro.lint.findings import Finding, Severity
from repro.lint.suppress import Suppressions

#: Rule names, in reporting order.
DEFAULT_RULES: Tuple[str, ...] = (
    "determinism",
    "mutable-default",
    "float-cycle",
    "bare-except",
    "parallel-seeding",
    "sweep-bare-pool",
    "unordered-iteration",
)

#: Files (posix-path suffixes) where the determinism rule does not apply:
#: the RNG helper is the one legitimate owner of ``random``.
DETERMINISM_EXEMPT: Tuple[str, ...] = ("repro/sim/rng.py",)

#: Directory fragments exempt from the determinism, parallel-seeding,
#: and sweep-bare-pool rules: the measurement harness times wall clocks
#: and owns the worker pools (and their resilient dispatch) by design —
#: it is harness, not simulation.
PERF_EXEMPT_DIRS: Tuple[str, ...] = ("repro/perf/",)

#: Directory fragments where iteration order feeds simulation state, so
#: the unordered-iteration rule is active.  Reporting/CLI layers may
#: iterate sets freely (their output is sorted at render time).
ORDER_SENSITIVE_DIRS: Tuple[str, ...] = (
    "repro/core/",
    "repro/fabric/",
    "repro/sim/",
    "repro/analyze/",
)

#: Individual files outside those packages that still feed simulation
#: state.  The dense stepping tier lives under the perf harness but
#: mirrors ring state bit-for-bit; one set-ordered loop there breaks
#: cycle-identical equivalence with the reference walk, so it is held
#: to the unordered-iteration rule like the core packages.
ORDER_SENSITIVE_FILES: Tuple[str, ...] = ("repro/perf/dense.py",)

#: Modules whose import outside repro/perf/ the parallel-seeding rule
#: flags.
_PARALLEL_MODULES = {"multiprocessing", "concurrent.futures"}

#: Method names whose call result is a set (set algebra).  ``copy`` is
#: excluded: it is too generic to attribute to sets from syntax alone.
_SET_METHODS = {"union", "intersection", "difference",
                "symmetric_difference"}

#: Modules whose import anywhere in a sim path is nondeterminism.
#: ``numpy`` itself is deliberately absent — deterministic array math is
#: how the dense stepping tier earns its keep — but ``numpy.random``
#: (in any spelling; see the visitor) stays banned.
_BANNED_MODULES = {"random", "secrets", "numpy.random"}

#: Dotted call suffixes that read the wall clock or entropy pool.
_BANNED_CALLS = {
    "time.time",
    "time.time_ns",
    "time.monotonic",
    "time.monotonic_ns",
    "time.perf_counter",
    "time.perf_counter_ns",
    "time.process_time",
    "datetime.now",
    "datetime.utcnow",
    "datetime.today",
    "date.today",
    "os.urandom",
    "uuid.uuid1",
    "uuid.uuid4",
}

#: Names that the float-cycle rule treats as cycle counters.  Rates named
#: ``*_per_cycle`` are not counters and may legitimately be floats.
_CYCLE_NAME = re.compile(r"(^|_)cycles?$")
_RATE_NAME = re.compile(r"per_cycle")

#: Builtins whose result does not depend on the iteration order of their
#: iterable argument (commutative/associative reductions, re-sorting, or
#: re-collection into another unordered type).  A comprehension feeding
#: one of these directly is exempt from the unordered-iteration rule.
_ORDER_INSENSITIVE_REDUCERS = {
    "sum", "max", "min", "any", "all", "len", "sorted", "set", "frozenset",
    "Counter",
}


def _dotted(node: ast.AST) -> Optional[str]:
    """Dotted name of an attribute chain (``a.b.c``) or bare name."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def _is_cycle_name(node: ast.AST) -> bool:
    name = None
    if isinstance(node, ast.Name):
        name = node.id
    elif isinstance(node, ast.Attribute):
        name = node.attr
    if name is None or _RATE_NAME.search(name):
        return False
    return bool(_CYCLE_NAME.search(name))


def _contains_float_math(node: ast.AST) -> Optional[ast.AST]:
    """First sub-expression that produces a float: a float literal,
    a true division, or a call to ``float``."""
    for sub in ast.walk(node):
        if isinstance(sub, ast.Constant) and isinstance(sub.value, float):
            return sub
        if isinstance(sub, ast.BinOp) and isinstance(sub.op, ast.Div):
            return sub
        if (isinstance(sub, ast.Call) and isinstance(sub.func, ast.Name)
                and sub.func.id == "float"):
            return sub
    return None


def _set_expr_desc(node: ast.AST) -> Optional[str]:
    """Describe ``node`` if it syntactically produces a set, else None."""
    if isinstance(node, ast.Set):
        return "a set literal"
    if isinstance(node, ast.SetComp):
        return "a set comprehension"
    if isinstance(node, ast.Call):
        name = _dotted(node.func) or ""
        last = name.split(".")[-1]
        if last in {"set", "frozenset"}:
            return f"a {last}() call"
        if isinstance(node.func, ast.Attribute) and last in _SET_METHODS:
            return f"a .{last}() set-algebra result"
    return None


class _RuleVisitor(ast.NodeVisitor):
    """Single-pass visitor applying every enabled rule."""

    def __init__(
        self,
        path: str,
        rules: Sequence[str],
        suppressed: Suppressions,
        determinism_exempt: bool,
        parallel_exempt: bool = False,
        order_sensitive: bool = False,
        source_lines: Optional[List[str]] = None,
    ):
        self.path = path
        self.rules = set(rules)
        if determinism_exempt:
            self.rules.discard("determinism")
        if parallel_exempt:
            self.rules.discard("parallel-seeding")
            self.rules.discard("sweep-bare-pool")
        if not order_sensitive:
            self.rules.discard("unordered-iteration")
        self.suppressed = suppressed
        self.source_lines = source_lines or []
        self.findings: List[Finding] = []
        # Comprehension nodes feeding an order-insensitive reduction
        # (``sum(x for x in some_set)``), exempt from unordered-iteration.
        self._commutative_ok: Set[int] = set()
        # Per-scope map of local names currently bound to set values,
        # for the unordered-iteration rule's flow-insensitive inference.
        self._set_locals: List[Set[str]] = [set()]
        # Names the module binds to the numpy package (``import numpy``,
        # ``import numpy as np``), so ``np.random.*`` attribute use can
        # be attributed back to the banned ``numpy.random``.
        self._numpy_aliases: Set[str] = set()
        # Names bound to ProcessPoolExecutor instances (assignment or
        # with-as), for the sweep-bare-pool rule's ``pool.map`` check.
        self._pool_names: Set[str] = set()

    # -- plumbing ---------------------------------------------------------

    def _emit(self, node: ast.AST, rule: str, message: str) -> None:
        if rule not in self.rules:
            return
        line = getattr(node, "lineno", 0)
        if self.suppressed.is_suppressed(line, rule):  # inline opt-out
            return
        context = None
        if 0 < line <= len(self.source_lines):
            context = self.source_lines[line - 1]
        self.findings.append(
            Finding(rule=rule, message=message, severity=Severity.ERROR,
                    path=self.path, line=line,
                    col=getattr(node, "col_offset", 0), context=context)
        )

    # -- determinism ------------------------------------------------------

    @staticmethod
    def _parallel_module(name: str) -> bool:
        return any(name == mod or name.startswith(mod + ".")
                   for mod in _PARALLEL_MODULES)

    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            if alias.name == "numpy":
                self._numpy_aliases.add(alias.asname or "numpy")
            if alias.name in _BANNED_MODULES:
                self._emit(
                    node, "determinism",
                    f"import of '{alias.name}' in a sim path; create "
                    "generators with repro.sim.rng.make_rng/split_rng "
                    "(type-hint with repro.sim.rng.Rng)",
                )
            if self._parallel_module(alias.name):
                self._emit(
                    node, "parallel-seeding",
                    f"import of '{alias.name}' outside repro/perf/; run "
                    "parallel work through repro.perf.sweep.run_sweep "
                    "so per-point seeds stay worker-independent",
                )
        self.generic_visit(node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        module = node.module or ""
        if module in _BANNED_MODULES:
            self._emit(
                node, "determinism",
                f"import from '{module}' in a sim path; use "
                "repro.sim.rng.make_rng/split_rng instead",
            )
        elif module == "numpy":
            for alias in node.names:
                if alias.name == "random":
                    self._emit(
                        node, "determinism",
                        "'from numpy import random' is numpy.random in "
                        "disguise; all randomness goes through "
                        "repro.sim.rng.make_rng/split_rng",
                    )
        if self._parallel_module(module):
            self._emit(
                node, "parallel-seeding",
                f"import from '{module}' outside repro/perf/; run "
                "parallel work through repro.perf.sweep.run_sweep "
                "so per-point seeds stay worker-independent",
            )
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:
        dotted = _dotted(node.func)
        if (isinstance(node.func, ast.Name)
                and node.func.id in _ORDER_INSENSITIVE_REDUCERS):
            # ``sum(x for x in some_set)`` and friends: the reduction is
            # commutative (or re-orders anyway), so the set iteration
            # feeding it cannot leak nondeterministic order into state.
            for arg in node.args:
                if isinstance(arg, (ast.GeneratorExp, ast.ListComp,
                                    ast.SetComp)):
                    self._commutative_ok.add(id(arg))
        if dotted is not None:
            for banned in _BANNED_CALLS:
                if dotted == banned or dotted.endswith("." + banned):
                    self._emit(
                        node, "determinism",
                        f"wall-clock/entropy call '{dotted}' in a sim "
                        "path; cycle counts are the only clock a "
                        "deterministic simulator may read",
                    )
                    break
            if dotted == "os.getpid" or dotted.endswith(".getpid"):
                self._emit(
                    node, "parallel-seeding",
                    f"'{dotted}' outside repro/perf/: a pid-derived "
                    "value in a sim path makes results depend on which "
                    "worker ran the point; derive per-point seeds with "
                    "repro.perf.sweep.point_seed",
                )
        self._check_bare_pool_map(node)
        self.generic_visit(node)

    # -- bare pool.map ----------------------------------------------------

    @staticmethod
    def _is_pool_ctor(node: ast.AST) -> bool:
        if not isinstance(node, ast.Call):
            return False
        name = _dotted(node.func) or ""
        return name.split(".")[-1] == "ProcessPoolExecutor"

    def _check_bare_pool_map(self, node: ast.Call) -> None:
        if not isinstance(node.func, ast.Attribute) or node.func.attr != "map":
            return
        owner = node.func.value
        is_pool = self._is_pool_ctor(owner) or (
            isinstance(owner, ast.Name) and owner.id in self._pool_names)
        if is_pool:
            self._emit(
                node, "sweep-bare-pool",
                "direct ProcessPoolExecutor.map outside repro/perf/ is "
                "all-or-nothing: one worker crash/hang/OOM destroys "
                "every completed point; dispatch through "
                "repro.perf.sweep.run_sweep (per-point timeouts, "
                "deterministic retry, pool recovery, journaled resume)",
            )

    def visit_Attribute(self, node: ast.Attribute) -> None:
        if (node.attr == "random" and isinstance(node.value, ast.Name)
                and node.value.id in self._numpy_aliases):
            self._emit(
                node, "determinism",
                f"'{node.value.id}.random' in a sim path: numpy array "
                "math is fine, numpy randomness is not — a "
                "numpy-seeded stream bypasses repro.sim.rng and breaks "
                "run-for-run determinism",
            )
        self.generic_visit(node)

    # -- mutable defaults -------------------------------------------------

    def _check_defaults(self, node) -> None:
        defaults = list(node.args.defaults) + [
            d for d in node.args.kw_defaults if d is not None
        ]
        for default in defaults:
            bad = None
            if isinstance(default, (ast.List, ast.Dict, ast.Set)):
                bad = type(default).__name__.lower()
            elif isinstance(default, ast.Call):
                name = _dotted(default.func) or ""
                if name.split(".")[-1] in {"list", "dict", "set",
                                           "deque", "defaultdict",
                                           "OrderedDict", "Counter"}:
                    bad = name
            if bad is not None:
                self._emit(
                    default, "mutable-default",
                    f"mutable default ({bad}) in '{node.name}' is shared "
                    "across calls; default to None and allocate inside",
                )

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._check_defaults(node)
        self._set_locals.append(set())
        self.generic_visit(node)
        self._set_locals.pop()

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._check_defaults(node)
        self._set_locals.append(set())
        self.generic_visit(node)
        self._set_locals.pop()

    # -- float arithmetic on cycle counters -------------------------------

    def _check_cycle_assign(self, node: ast.AST, targets: Iterable[ast.AST],
                            value: ast.AST) -> None:
        if not any(_is_cycle_name(t) for t in targets):
            return
        culprit = _contains_float_math(value)
        if culprit is not None:
            self._emit(
                node, "float-cycle",
                "float arithmetic assigned to a cycle counter; cycle "
                "counts must stay integral (use // or do unit "
                "conversion in a reporting-only variable)",
            )

    def visit_Assign(self, node: ast.Assign) -> None:
        self._check_cycle_assign(node, node.targets, node.value)
        is_set = _set_expr_desc(node.value) is not None
        is_pool = self._is_pool_ctor(node.value)
        for target in node.targets:
            if isinstance(target, ast.Name):
                if is_set:
                    self._set_locals[-1].add(target.id)
                else:
                    self._set_locals[-1].discard(target.id)
                if is_pool:
                    self._pool_names.add(target.id)
                else:
                    self._pool_names.discard(target.id)
        self.generic_visit(node)

    def _visit_with(self, node) -> None:
        for item in node.items:
            if (self._is_pool_ctor(item.context_expr)
                    and isinstance(item.optional_vars, ast.Name)):
                self._pool_names.add(item.optional_vars.id)
        self.generic_visit(node)

    visit_With = _visit_with
    visit_AsyncWith = _visit_with

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        if node.value is not None:
            self._check_cycle_assign(node, [node.target], node.value)
        self.generic_visit(node)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        if _is_cycle_name(node.target) and (
            isinstance(node.op, ast.Div)
            or _contains_float_math(node.value) is not None
        ):
            self._emit(
                node, "float-cycle",
                "float arithmetic on a cycle counter; cycle counts must "
                "stay integral",
            )
        self.generic_visit(node)

    # -- bare except ------------------------------------------------------

    def visit_ExceptHandler(self, node: ast.ExceptHandler) -> None:
        if node.type is None:
            self._emit(
                node, "bare-except",
                "bare 'except:' swallows InvariantViolation and "
                "KeyboardInterrupt; catch a concrete exception type",
            )
        self.generic_visit(node)

    # -- unordered iteration ----------------------------------------------

    def _set_iter_desc(self, iterable: ast.AST) -> Optional[str]:
        desc = _set_expr_desc(iterable)
        if desc is not None:
            return desc
        if isinstance(iterable, ast.Name):
            for scope in reversed(self._set_locals):
                if iterable.id in scope:
                    return f"'{iterable.id}' (bound to a set above)"
        return None

    def _check_iteration(self, node: ast.AST, iterable: ast.AST) -> None:
        desc = self._set_iter_desc(iterable)
        if desc is not None:
            self._emit(
                node, "unordered-iteration",
                f"iteration over {desc} in an order-sensitive sim path; "
                "set order depends on insertion history and hashing, so "
                "state touched in that order diverges between runs — "
                "iterate sorted(...) instead",
            )

    def visit_For(self, node: ast.For) -> None:
        self._check_iteration(node, node.iter)
        self.generic_visit(node)

    def _visit_comprehension(self, node) -> None:
        if id(node) not in self._commutative_ok:
            for gen in node.generators:
                self._check_iteration(gen.iter, gen.iter)
        self.generic_visit(node)

    visit_ListComp = _visit_comprehension
    visit_SetComp = _visit_comprehension
    visit_DictComp = _visit_comprehension
    visit_GeneratorExp = _visit_comprehension


def _perf_exempt(posix_path: str) -> bool:
    """True for files inside the measurement-harness directories."""
    return any(frag in posix_path or posix_path.startswith(frag.rstrip("/"))
               for frag in PERF_EXEMPT_DIRS)


def _order_sensitive(posix_path: str) -> bool:
    """True for files inside the order-sensitive simulation packages."""
    return (any(frag in posix_path for frag in ORDER_SENSITIVE_DIRS)
            or any(posix_path.endswith(suffix)
                   for suffix in ORDER_SENSITIVE_FILES))


def lint_source(
    source: str,
    path: str = "<string>",
    rules: Sequence[str] = DEFAULT_RULES,
    determinism_exempt: Optional[bool] = None,
    parallel_exempt: Optional[bool] = None,
    order_sensitive: Optional[bool] = None,
    suppressions: Optional[Suppressions] = None,
) -> List[Finding]:
    """Lint one module's source text; returns findings (empty = clean).

    Pass a shared :class:`Suppressions` instance to track which inline
    ``allow[...]`` comments actually fired across checker layers (the
    runner does, for unused-suppression detection); without one, a
    private instance is created and discarded.
    """
    posix = path.replace(os.sep, "/")
    if determinism_exempt is None:
        determinism_exempt = (any(posix.endswith(s)
                                  for s in DETERMINISM_EXEMPT)
                              or _perf_exempt(posix))
    if parallel_exempt is None:
        parallel_exempt = _perf_exempt(posix)
    if order_sensitive is None:
        order_sensitive = _order_sensitive(posix)
    if suppressions is None:
        suppressions = Suppressions(source, path)
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        return [Finding(rule="syntax", severity=Severity.ERROR,
                        message=f"cannot parse: {exc.msg}", path=path,
                        line=exc.lineno or 0, col=exc.offset or 0)]
    visitor = _RuleVisitor(path, rules, suppressions,
                           determinism_exempt, parallel_exempt,
                           order_sensitive,
                           source_lines=source.splitlines())
    visitor.visit(tree)
    return visitor.findings


def iter_python_files(root: str) -> List[str]:
    """All ``.py`` files under ``root`` (or ``root`` itself if a file)."""
    if os.path.isfile(root):
        return [root]
    out: List[str] = []
    for dirpath, dirnames, filenames in os.walk(root):
        dirnames[:] = sorted(
            d for d in dirnames
            if d != "__pycache__" and not d.endswith(".egg-info")
        )
        for name in sorted(filenames):
            if name.endswith(".py"):
                out.append(os.path.join(dirpath, name))
    return out


def lint_paths(
    paths: Iterable[str],
    rules: Sequence[str] = DEFAULT_RULES,
) -> Tuple[List[Finding], int]:
    """Lint every python file under ``paths``.

    Returns (findings, number of files linted).
    """
    findings: List[Finding] = []
    nfiles = 0
    for root in paths:
        for filepath in iter_python_files(root):
            nfiles += 1
            with open(filepath, "r", encoding="utf-8") as fh:
                findings.extend(lint_source(fh.read(), filepath, rules))
    return findings, nfiles
