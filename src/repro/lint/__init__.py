"""Static analysis and invariant verification for the reproduction.

Four layers, surfaced together as ``repro-noc check``:

- :mod:`repro.lint.rules` — per-file AST lint rules tailored to a
  cycle-accurate simulator (determinism, mutable defaults, integral
  cycle counters, no bare ``except``);
- :mod:`repro.lint.dataflow` — whole-program interprocedural analysis
  tracking RNG lineage (unrooted streams, split-salt collisions) and
  process-boundary dataflow (worker-shared mutable globals, config
  mutation after fabric/sweep handoff);
- :mod:`repro.lint.validator` — static topology/config validation run
  before any simulation (dangling bridge endpoints, unreachable
  stations, zero-depth queues, statically deadlock-prone SWAP-disabled
  inter-chiplet cycles per Section 4.4);
- :mod:`repro.lint.invariants` — opt-in runtime probes
  (``--check-invariants``) asserting flit conservation, the one-lap
  deflection bound, and I-tag/E-tag reservation consistency every cycle.

All layers emit the unified :class:`~repro.lint.findings.Finding`
record (severity, stable fingerprint), suppress via inline
``# repro: allow[rule]`` comments (:mod:`repro.lint.suppress`), subtract
a checked-in baseline (:mod:`repro.lint.baseline`) and export SARIF
2.1.0 (:mod:`repro.lint.sarif`).
"""

from repro.lint.baseline import Baseline
from repro.lint.dataflow import DataflowReport, analyze_paths, analyze_sources
from repro.lint.findings import Finding, Severity
from repro.lint.invariants import FabricInvariantChecker, InvariantViolation
from repro.lint.rules import DEFAULT_RULES, lint_paths, lint_source
from repro.lint.runner import CheckReport, run_check
from repro.lint.sarif import findings_to_sarif, write_sarif
from repro.lint.suppress import Suppressions
from repro.lint.validator import (
    validate_config,
    validate_reliability,
    validate_scenario,
    validate_scenario_file,
    validate_spec,
    validate_topology_dict,
)

__all__ = [
    "Baseline",
    "CheckReport",
    "DEFAULT_RULES",
    "DataflowReport",
    "FabricInvariantChecker",
    "Finding",
    "InvariantViolation",
    "Severity",
    "Suppressions",
    "analyze_paths",
    "analyze_sources",
    "findings_to_sarif",
    "lint_paths",
    "lint_source",
    "run_check",
    "write_sarif",
    "validate_config",
    "validate_reliability",
    "validate_scenario",
    "validate_scenario_file",
    "validate_spec",
    "validate_topology_dict",
]
