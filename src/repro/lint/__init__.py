"""Static analysis and invariant verification for the reproduction.

Three layers, surfaced together as ``repro-noc check``:

- :mod:`repro.lint.rules` — AST lint rules tailored to a cycle-accurate
  simulator (determinism, mutable defaults, integral cycle counters, no
  bare ``except``);
- :mod:`repro.lint.validator` — static topology/config validation run
  before any simulation (dangling bridge endpoints, unreachable
  stations, zero-depth queues, statically deadlock-prone SWAP-disabled
  inter-chiplet cycles per Section 4.4);
- :mod:`repro.lint.invariants` — opt-in runtime probes
  (``--check-invariants``) asserting flit conservation, the one-lap
  deflection bound, and I-tag/E-tag reservation consistency every cycle.
"""

from repro.lint.findings import Finding, Severity
from repro.lint.invariants import FabricInvariantChecker, InvariantViolation
from repro.lint.rules import DEFAULT_RULES, lint_paths, lint_source
from repro.lint.runner import CheckReport, run_check
from repro.lint.validator import (
    validate_config,
    validate_reliability,
    validate_scenario,
    validate_scenario_file,
    validate_spec,
    validate_topology_dict,
)

__all__ = [
    "CheckReport",
    "DEFAULT_RULES",
    "FabricInvariantChecker",
    "Finding",
    "InvariantViolation",
    "Severity",
    "lint_paths",
    "lint_source",
    "run_check",
    "validate_config",
    "validate_reliability",
    "validate_scenario",
    "validate_scenario_file",
    "validate_spec",
    "validate_topology_dict",
]
