"""Inline suppression comments with unused-suppression detection.

A line opts out of one or more rules with a trailing comment::

    self.busy_cycles = 0.0  # repro: allow[float-cycle]
    import random           # repro: allow[determinism, rng-not-rooted]

(the legacy ``# lint: allow[rule]`` spelling is accepted too).  Every
checker layer that anchors findings to source lines — the AST lint and
the dataflow analyzer — consults one :class:`Suppressions` instance per
file, which records which suppressions actually fired.  A suppression
whose rule never fires on its line is itself reported
(``unused-suppression``, warn severity) so stale opt-outs cannot rot in
the tree after the code they excused is gone.
"""

from __future__ import annotations

import io
import re
import tokenize
from typing import Dict, Iterator, List, Set, Tuple

from repro.lint.findings import Finding, Severity

_ALLOW_COMMENT = re.compile(
    r"#\s*(?:repro|lint):\s*allow\[([a-z0-9\-, ]+)\]")


def _iter_comments(source: str) -> Iterator[Tuple[int, str]]:
    """(lineno, text) for every *real* comment token.

    Tokenizing (rather than regex-scanning raw lines) keeps suppression
    examples inside docstrings — like the ones in this module's — from
    registering as live suppressions.  Files that fail to tokenize get
    no suppressions; the lint reports them as ``syntax`` anyway.
    """
    try:
        for tok in tokenize.generate_tokens(io.StringIO(source).readline):
            if tok.type == tokenize.COMMENT:
                yield tok.start[0], tok.string
    except (tokenize.TokenError, IndentationError, SyntaxError):
        return


class Suppressions:
    """Per-file suppression table with usage tracking."""

    def __init__(self, source: str, path: str = "<string>"):
        self.path = path
        #: line -> rules allowed on that line
        self._allowed: Dict[int, Set[str]] = {}
        #: (line, rule) pairs that suppressed at least one finding
        self._used: Set[Tuple[int, str]] = set()
        #: line -> the raw source line (context for unused findings)
        self._line_text: Dict[int, str] = {}
        lines = source.splitlines()
        for lineno, comment in _iter_comments(source):
            match = _ALLOW_COMMENT.search(comment)
            if match:
                rules = {r.strip() for r in match.group(1).split(",")
                         if r.strip()}
                if rules:
                    self._allowed[lineno] = rules
                    if 0 < lineno <= len(lines):
                        self._line_text[lineno] = lines[lineno - 1]

    def __bool__(self) -> bool:
        return bool(self._allowed)

    def is_suppressed(self, line: int, rule: str) -> bool:
        """True (and marks the suppression used) if ``rule`` is allowed
        on ``line``."""
        if rule in self._allowed.get(line, ()):
            self._used.add((line, rule))
            return True
        return False

    def mark_used(self, line: int, rule: str) -> None:
        """Replay a usage recorded by an earlier (cached) run."""
        if rule in self._allowed.get(line, ()):
            self._used.add((line, rule))

    def used(self) -> List[Tuple[int, str]]:
        return sorted(self._used)

    def unused(self) -> Iterator[Tuple[int, str]]:
        for line in sorted(self._allowed):
            for rule in sorted(self._allowed[line]):
                if (line, rule) not in self._used:
                    yield line, rule

    def unused_findings(self) -> List[Finding]:
        """One warn finding per suppression that never fired.

        The ``unused-suppression`` rule cannot suppress itself — a
        suppression comment is either used or reported, never silenced.
        """
        out: List[Finding] = []
        for line, rule in self.unused():
            out.append(Finding(
                rule="unused-suppression",
                message=(f"suppression 'allow[{rule}]' never fired on "
                         "this line; delete it (or fix the rule name) "
                         "so opt-outs cannot rot"),
                severity=Severity.WARN, path=self.path, line=line,
                context=self._line_text.get(line)))
        return out
