"""SARIF 2.1.0 export for ``repro-noc check`` findings.

SARIF (Static Analysis Results Interchange Format) is the OASIS schema
GitHub code scanning ingests; exporting it lets check findings annotate
pull-request diffs instead of living only in CI logs.  The exporter
emits the minimal valid document: one ``run`` whose ``tool.driver``
declares every rule that fired (id + short description) and one
``result`` per finding with ``ruleId``, ``level``, a physical location,
and the finding's stable fingerprint under ``partialFingerprints`` so
code scanning tracks an annotation across pushes the same way the local
baseline does.

Severity maps ``error -> error``, ``warn -> warning``, ``info -> note``
(SARIF's level vocabulary).  Paths are emitted repo-relative via
:func:`repro.lint.findings.normalize_path` prefixed with ``src/`` when
the finding lives in the installed package, so annotations land on the
checked-out files.
"""

from __future__ import annotations

import json
from typing import Dict, Iterable, List, Optional, Sequence

from repro.lint.findings import Finding, Severity, normalize_path

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = ("https://raw.githubusercontent.com/oasis-tcs/"
                "sarif-spec/master/Schemata/sarif-schema-2.1.0.json")

#: Finding severity -> SARIF result level.
_LEVELS = {
    Severity.ERROR: "error",
    Severity.WARN: "warning",
    Severity.INFO: "note",
}

#: One-line rule descriptions for the tool.driver.rules table.  Rules
#: not listed still export (SARIF only requires the id).
RULE_DESCRIPTIONS: Dict[str, str] = {
    "determinism": "non-deterministic source (random/time/hash seed) in "
                   "simulation code",
    "mutable-default": "mutable default argument",
    "float-cycle": "float arithmetic on a cycle counter",
    "bare-except": "bare except swallows invariant violations",
    "parallel-seeding": "process pool without explicit per-task seeding",
    "sweep-bare-pool": "raw executor use outside the sweep helpers",
    "unordered-iteration": "iteration over an unordered container in "
                           "order-sensitive code",
    "rng-not-rooted": "random stream constructed outside the "
                      "repro.sim.rng factories",
    "split-collision": "same split_rng salt derived twice from one "
                       "parent stream",
    "process-shared-state": "mutable module state crossing the process "
                            "pool boundary",
    "config-mutated-after-handoff": "config dataclass mutated after "
                                    "handoff to a fabric or sweep",
    "unused-suppression": "inline allow[...] comment that never fired",
    "stale-baseline-entry": "baseline entry that matched no finding",
    "syntax": "file does not parse",
}


def _artifact_uri(path: Optional[str]) -> Optional[str]:
    if not path:
        return None
    norm = normalize_path(path)
    if norm.startswith("repro/"):
        return "src/" + norm
    return norm


def findings_to_sarif(findings: Sequence[Finding],
                      tool_name: str = "repro-noc-check",
                      tool_version: str = "1.0.0") -> dict:
    """Build the SARIF 2.1.0 document for a findings list."""
    rules_seen: List[str] = []
    for f in findings:
        if f.rule not in rules_seen:
            rules_seen.append(f.rule)
    rules = [
        {
            "id": rule,
            "shortDescription": {
                "text": RULE_DESCRIPTIONS.get(rule, rule),
            },
        }
        for rule in sorted(rules_seen)
    ]
    results = []
    for f in findings:
        result = {
            "ruleId": f.rule,
            "level": _LEVELS.get(f.severity, "error"),
            "message": {"text": f.message},
            "partialFingerprints": {
                "reproFingerprint/v1": f.fingerprint,
            },
        }
        uri = _artifact_uri(f.path)
        if uri is not None:
            location: dict = {
                "physicalLocation": {
                    "artifactLocation": {"uri": uri},
                },
            }
            if f.line:
                region: dict = {"startLine": f.line}
                if f.col is not None:
                    # SARIF columns are 1-based; ast columns 0-based.
                    region["startColumn"] = f.col + 1
                location["physicalLocation"]["region"] = region
            result["locations"] = [location]
        results.append(result)
    return {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": tool_name,
                        "version": tool_version,
                        "informationUri":
                            "https://example.invalid/repro-noc",
                        "rules": rules,
                    },
                },
                "results": results,
            },
        ],
    }


def write_sarif(findings: Iterable[Finding], path: str, **kwargs) -> None:
    doc = findings_to_sarif(list(findings), **kwargs)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(doc, fh, indent=2)
        fh.write("\n")
