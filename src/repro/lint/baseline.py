"""Checked-in findings baseline for ``repro-noc check``.

A baseline is the reviewed set of findings the team has decided to live
with: each entry is a finding *fingerprint* (rule + normalized path +
normalized line content, see :mod:`repro.lint.findings`), so entries
survive line insertion, renumbering, and reformatting — but not a change
to the flagged line itself, which is exactly when a human should re-look.

``repro-noc check --baseline lint-baseline.json`` subtracts baselined
findings from the report, so CI fails only on *new* findings.  Two
honesty mechanisms keep the baseline from rotting:

- entries that no longer match any finding are reported as
  ``stale-baseline-entry`` (info) so fixed defects get removed from the
  file rather than lingering as dead weight;
- ``--write-baseline`` regenerates the file from the current findings,
  which makes baseline updates an explicit, reviewable diff.

The shipped ``lint-baseline.json`` at the repo root is empty: the tree
is clean, and the file exists so CI has a stable gate target.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Sequence, Tuple

from repro.lint.findings import Finding, Severity

BASELINE_VERSION = 1


@dataclass
class Baseline:
    """A fingerprint set plus enough metadata to keep entries readable."""

    #: fingerprint -> {"rule", "path", "message"} (metadata is advisory;
    #: only the fingerprint participates in matching).
    entries: Dict[str, Dict[str, str]] = field(default_factory=dict)

    def __contains__(self, fingerprint: str) -> bool:
        return fingerprint in self.entries

    def __len__(self) -> int:
        return len(self.entries)

    @classmethod
    def from_findings(cls, findings: Iterable[Finding]) -> "Baseline":
        entries: Dict[str, Dict[str, str]] = {}
        for f in findings:
            entries[f.fingerprint] = {
                "rule": f.rule,
                "path": f.path or "",
                "message": f.message,
            }
        return cls(entries=entries)

    @classmethod
    def load(cls, path: str) -> "Baseline":
        with open(path, "r", encoding="utf-8") as fh:
            raw = json.load(fh)
        if not isinstance(raw, dict) or "findings" not in raw:
            raise ValueError(
                f"{path}: not a lint baseline (missing 'findings')")
        entries: Dict[str, Dict[str, str]] = {}
        for item in raw["findings"]:
            entries[item["fingerprint"]] = {
                "rule": item.get("rule", ""),
                "path": item.get("path", ""),
                "message": item.get("message", ""),
            }
        return cls(entries=entries)

    def dump(self, path: str) -> None:
        payload = {
            "version": BASELINE_VERSION,
            "findings": [
                {"fingerprint": fp, **meta}
                for fp, meta in sorted(self.entries.items(),
                                       key=lambda kv: (kv[1]["path"],
                                                       kv[1]["rule"],
                                                       kv[0]))
            ],
        }
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(payload, fh, indent=2, sort_keys=False)
            fh.write("\n")

    def apply(
        self, findings: Sequence[Finding],
    ) -> Tuple[List[Finding], List[Finding], List[Finding]]:
        """Split findings against the baseline.

        Returns ``(new, suppressed, stale)``: findings not in the
        baseline, findings the baseline absorbs, and one info-severity
        ``stale-baseline-entry`` finding per baseline entry that matched
        nothing this run.
        """
        new: List[Finding] = []
        suppressed: List[Finding] = []
        matched: set = set()
        for f in findings:
            fp = f.fingerprint
            if fp in self.entries:
                matched.add(fp)
                suppressed.append(f)
            else:
                new.append(f)
        stale = [
            Finding(
                rule="stale-baseline-entry",
                message=(f"baseline entry {fp} ([{meta['rule']}] "
                         f"{meta['path']}) matched no finding; the "
                         "defect was fixed — remove the entry "
                         "(--write-baseline regenerates the file)"),
                severity=Severity.INFO,
                path=meta["path"] or None,
                context=f"baseline:{fp}")
            for fp, meta in sorted(self.entries.items())
            if fp not in matched
        ]
        return new, suppressed, stale
