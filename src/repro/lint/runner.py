"""The ``repro-noc check`` orchestration: lint + validator in one report.

``run_check`` lints the installed ``repro`` package (or any source tree
given), statically validates the built-in topologies with their default
configs, and validates any scenario/topology JSON files passed on the
command line.  The report's exit code is non-zero iff any finding is an
error, so CI can gate on it directly.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Optional, Sequence

from repro.lint.findings import Finding, Severity
from repro.lint.rules import lint_paths
from repro.lint.validator import validate_scenario_file, validate_spec
from repro.reporting import FindingsReport


@dataclass
class CheckReport(FindingsReport):
    """Aggregated findings from every checker layer.

    Ordering, error/warning split, per-rule counts, and the exit-code
    convention come from the shared :class:`repro.reporting.FindingsReport`
    base, which ``verify`` and ``analyze`` reports also build on.
    """

    files_linted: int = 0
    topologies_validated: int = 0
    scenarios_validated: int = 0

    def format(self) -> str:
        lines = self.format_findings()
        lines.append(
            f"checked {self.files_linted} source files, "
            f"{self.topologies_validated} built-in topologies, "
            f"{self.scenarios_validated} scenario files: "
            f"{len(self.errors)} errors, {len(self.warnings)} warnings"
        )
        return "\n".join(lines)

    def to_dict(self) -> dict:
        out = self.findings_to_dict()
        out.update(
            files_linted=self.files_linted,
            topologies_validated=self.topologies_validated,
            scenarios_validated=self.scenarios_validated,
        )
        return out


def default_source_root() -> str:
    """The installed ``repro`` package directory (the default lint target)."""
    import repro

    return os.path.dirname(os.path.abspath(repro.__file__))


def _builtin_specs():
    """(name, TopologySpec, MultiRingConfig) for every built-in system."""
    from repro.ai.mesh_system import AiProcessorConfig
    from repro.core.config import MultiRingConfig
    from repro.core.topology import chiplet_pair, grid_of_rings, single_ring_topology

    out = []
    spec, _ = single_ring_topology(12)
    out.append(("single-ring", spec, MultiRingConfig()))
    spec, _, _ = chiplet_pair()
    out.append(("chiplet-pair", spec, MultiRingConfig()))
    cfg = AiProcessorConfig()
    layout = grid_of_rings(
        cfg.n_vrings, cfg.n_hrings, cfg.cores_per_vring, cfg.memory_per_hring,
        stop_spacing=cfg.stop_spacing,
        vring_lanes=cfg.lanes_per_direction, hring_lanes=cfg.hring_lanes,
    )
    out.append(("ai-grid", layout.topology,
                MultiRingConfig(lanes_per_direction=cfg.lanes_per_direction)))
    from repro.cpu.package import build_server_system

    fabric, _, _ = build_server_system("multiring")
    out.append(("server-package", fabric.topology, fabric.config))
    return out


def run_check(
    src_paths: Optional[Sequence[str]] = None,
    scenario_paths: Sequence[str] = (),
    lint: bool = True,
    builtin: bool = True,
) -> CheckReport:
    """Run every static layer and aggregate the findings."""
    report = CheckReport()
    if lint:
        paths = list(src_paths) if src_paths else [default_source_root()]
        # A typo'd --src would otherwise lint zero files and pass CI.
        for path in paths:
            if not os.path.exists(path):
                report.findings.append(Finding(
                    rule="missing-path",
                    message="source path does not exist",
                    severity=Severity.ERROR, path=path))
        findings, nfiles = lint_paths([p for p in paths if os.path.exists(p)])
        report.findings.extend(findings)
        report.files_linted = nfiles
    if builtin:
        for name, spec, config in _builtin_specs():
            report.findings.extend(
                validate_spec(spec, config, path=f"<builtin:{name}>"))
            report.topologies_validated += 1
    for path in scenario_paths:
        report.findings.extend(validate_scenario_file(path))
        report.scenarios_validated += 1
    return report
