"""The ``repro-noc check`` orchestration: one entry over every layer.

``run_check`` runs, in order:

1. the per-file AST lint over the installed ``repro`` package (or any
   source tree given), memoized per file by mtime+size
   (:mod:`repro.lint.cache`) so warm runs skip unchanged files;
2. the whole-program interprocedural dataflow analysis
   (:mod:`repro.lint.dataflow`) over the same sources;
3. static validation of the built-in topologies and any scenario JSON
   files passed on the command line;
4. unused-suppression detection: after every line-anchored layer has
   run, any inline ``# repro: allow[rule]`` comment that never fired
   becomes a warn finding;
5. baseline subtraction (:mod:`repro.lint.baseline`): findings whose
   fingerprint is in the checked-in baseline are absorbed, stale
   entries surface as info findings.

The report's exit code is non-zero iff any surviving finding is at or
above the ``fail_on`` severity (default ``error``), so CI can gate on
it directly and tighten to ``warn`` where wanted.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.lint.baseline import Baseline
from repro.lint.cache import LintCache, default_cache_path, rules_signature
from repro.lint.dataflow import analyze_sources
from repro.lint.findings import Finding, Severity
from repro.lint.rules import DEFAULT_RULES, iter_python_files, lint_source
from repro.lint.suppress import Suppressions
from repro.lint.validator import validate_scenario_file, validate_spec
from repro.reporting import FindingsReport


@dataclass
class CheckReport(FindingsReport):
    """Aggregated findings from every checker layer.

    Ordering, severity split, per-rule counts, and the exit-code
    convention come from the shared :class:`repro.reporting.FindingsReport`
    base, which ``verify`` and ``analyze`` reports also build on.
    """

    files_linted: int = 0
    modules_analyzed: int = 0
    topologies_validated: int = 0
    scenarios_validated: int = 0
    #: Findings absorbed by the baseline (reported in the summary so a
    #: "clean" run with a fat baseline does not read as a clean tree).
    baseline_suppressed: int = 0
    cache_hits: int = 0
    cache_misses: int = 0

    def format(self) -> str:
        lines = self.format_findings()
        summary = (
            f"checked {self.files_linted} source files "
            f"({self.modules_analyzed} dataflow modules), "
            f"{self.topologies_validated} built-in topologies, "
            f"{self.scenarios_validated} scenario files: "
            f"{len(self.errors)} errors, {len(self.warnings)} warnings, "
            f"{len(self.infos)} notes"
        )
        if self.baseline_suppressed:
            summary += f" ({self.baseline_suppressed} baselined)"
        if self.cache_hits or self.cache_misses:
            summary += (f" [cache: {self.cache_hits} hits, "
                        f"{self.cache_misses} misses]")
        lines.append(summary)
        return "\n".join(lines)

    def to_dict(self) -> dict:
        out = self.findings_to_dict()
        out.update(
            files_linted=self.files_linted,
            modules_analyzed=self.modules_analyzed,
            topologies_validated=self.topologies_validated,
            scenarios_validated=self.scenarios_validated,
            baseline_suppressed=self.baseline_suppressed,
            cache_hits=self.cache_hits,
            cache_misses=self.cache_misses,
        )
        return out


def default_source_root() -> str:
    """The installed ``repro`` package directory (the default lint target)."""
    import repro

    return os.path.dirname(os.path.abspath(repro.__file__))


def _builtin_specs():
    """(name, TopologySpec, MultiRingConfig) for every built-in system."""
    from repro.ai.mesh_system import AiProcessorConfig
    from repro.core.config import MultiRingConfig
    from repro.core.topology import chiplet_pair, grid_of_rings, single_ring_topology

    out = []
    spec, _ = single_ring_topology(12)
    out.append(("single-ring", spec, MultiRingConfig()))
    spec, _, _ = chiplet_pair()
    out.append(("chiplet-pair", spec, MultiRingConfig()))
    cfg = AiProcessorConfig()
    layout = grid_of_rings(
        cfg.n_vrings, cfg.n_hrings, cfg.cores_per_vring, cfg.memory_per_hring,
        stop_spacing=cfg.stop_spacing,
        vring_lanes=cfg.lanes_per_direction, hring_lanes=cfg.hring_lanes,
    )
    out.append(("ai-grid", layout.topology,
                MultiRingConfig(lanes_per_direction=cfg.lanes_per_direction)))
    from repro.cpu.package import build_server_system

    fabric, _, _ = build_server_system("multiring")
    out.append(("server-package", fabric.topology, fabric.config))
    return out


def run_check(
    src_paths: Optional[Sequence[str]] = None,
    scenario_paths: Sequence[str] = (),
    lint: bool = True,
    builtin: bool = True,
    dataflow: bool = True,
    baseline_path: Optional[str] = None,
    write_baseline: bool = False,
    fail_on: str = Severity.ERROR,
    use_cache: bool = True,
    cache_path: Optional[str] = None,
) -> CheckReport:
    """Run every static layer and aggregate the findings.

    ``baseline_path`` subtracts the checked-in baseline (and reports its
    stale entries); ``write_baseline`` regenerates that file from this
    run's findings first, so the run itself exits clean.  ``use_cache``
    memoizes the per-file lint by mtime+size (the dataflow pass always
    runs whole-program).
    """
    report = CheckReport(fail_on=Severity.normalize(fail_on))
    suppressions: Dict[str, Suppressions] = {}
    sources: Dict[str, str] = {}
    if lint:
        paths = list(src_paths) if src_paths else [default_source_root()]
        # A typo'd --src would otherwise lint zero files and pass CI.
        for path in paths:
            if not os.path.exists(path):
                report.findings.append(Finding(
                    rule="missing-path",
                    message="source path does not exist",
                    severity=Severity.ERROR, path=path))
        files: List[str] = []
        for path in paths:
            if os.path.exists(path):
                for filepath in iter_python_files(path):
                    if filepath not in sources:
                        files.append(filepath)
                        with open(filepath, "r", encoding="utf-8") as fh:
                            sources[filepath] = fh.read()
        cache = None
        if use_cache:
            cache = LintCache.load(cache_path or default_cache_path(),
                                   rules_signature(DEFAULT_RULES))
        for filepath in files:
            supp = Suppressions(sources[filepath], filepath)
            suppressions[filepath] = supp
            cached = cache.lookup(filepath) if cache is not None else None
            if cached is not None:
                findings, used = cached
                # Replay which suppressions the cached lint consumed, so
                # unused-suppression does not false-fire on cache hits.
                for line, rule in used:
                    supp.mark_used(line, rule)
            else:
                findings = lint_source(sources[filepath], filepath,
                                       suppressions=supp)
                if cache is not None:
                    cache.store(filepath, findings, supp.used())
            report.findings.extend(findings)
        report.files_linted = len(files)
        if cache is not None:
            report.cache_hits = cache.hits
            report.cache_misses = cache.misses
            cache.save()
        if dataflow and sources:
            flow = analyze_sources(sources, suppressions)
            report.findings.extend(flow.findings)
            report.modules_analyzed = flow.modules
        # Every line-anchored layer has now consulted the suppression
        # tables; whatever never fired is itself a finding.
        for filepath in files:
            report.findings.extend(suppressions[filepath].unused_findings())
    if builtin:
        for name, spec, config in _builtin_specs():
            report.findings.extend(
                validate_spec(spec, config, path=f"<builtin:{name}>"))
            report.topologies_validated += 1
    for path in scenario_paths:
        report.findings.extend(validate_scenario_file(path))
        report.scenarios_validated += 1
    if write_baseline and baseline_path:
        Baseline.from_findings(report.findings).dump(baseline_path)
    if baseline_path and os.path.exists(baseline_path):
        baseline = Baseline.load(baseline_path)
        new, absorbed, stale = baseline.apply(report.findings)
        report.findings = new + stale
        report.baseline_suppressed = len(absorbed)
    return report
