"""Per-file memo cache for the ``repro-noc check`` lint pass.

Linting is pure per file — findings depend only on the file's bytes and
the rule set — so warm runs skip files whose ``(mtime, size)`` pair is
unchanged since the last run and replay the recorded findings instead of
re-parsing.  The cache is a single JSON file (default
``~/.cache/repro-noc/check-cache.json``, override with ``--cache-file``,
bypass with ``--no-cache``) keyed by absolute path, stamped with a
signature of the rule set and lint-code version so a rules change
invalidates everything at once.

Two correctness subtleties, both load-bearing:

- a cache entry records the findings *before* baseline subtraction, so
  the same entry stays valid whatever baseline the next run applies;
- a cache entry also records which inline suppressions fired
  (``used_suppressions``), and the runner replays those marks into the
  fresh :class:`~repro.lint.suppress.Suppressions` table on a hit —
  otherwise every cache hit would false-fire ``unused-suppression``
  warnings for comments whose rule only fires when the file is actually
  linted.

The interprocedural dataflow pass is *not* cached: its verdicts depend
on every module at once (a change in one file can create a finding in
another), and a whole-program analysis of this tree runs in well under a
second anyway.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.lint.findings import Finding

#: Bump when cached-entry semantics change (invalidates old caches).
CACHE_FORMAT = 1


def default_cache_path() -> str:
    base = os.environ.get("XDG_CACHE_HOME",
                          os.path.join(os.path.expanduser("~"), ".cache"))
    return os.path.join(base, "repro-noc", "check-cache.json")


def rules_signature(rules: Sequence[str]) -> str:
    """Fingerprint of the active rule set + lint implementation version.

    Importing here (not at module top) keeps the cache importable even
    if the rules module is mid-refactor; the signature only needs to
    change whenever rule behavior might.
    """
    from repro.lint import rules as rules_mod
    try:
        with open(rules_mod.__file__, "rb") as fh:
            impl = hashlib.sha256(fh.read()).hexdigest()[:12]
    except OSError:
        impl = "unknown"
    payload = ",".join(sorted(rules)) + "|" + impl + f"|v{CACHE_FORMAT}"
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:16]


@dataclass
class LintCache:
    """mtime+size memo of per-file lint results."""

    path: str
    signature: str
    #: abs path -> {"mtime", "size", "findings", "used_suppressions"}
    entries: Dict[str, dict] = field(default_factory=dict)
    hits: int = 0
    misses: int = 0
    _dirty: bool = field(default=False, repr=False)

    @classmethod
    def load(cls, path: str, signature: str) -> "LintCache":
        """Load the cache, dropping it wholesale on signature mismatch."""
        entries: Dict[str, dict] = {}
        try:
            with open(path, "r", encoding="utf-8") as fh:
                raw = json.load(fh)
            if (isinstance(raw, dict)
                    and raw.get("signature") == signature
                    and isinstance(raw.get("entries"), dict)):
                entries = raw["entries"]
        except (OSError, ValueError):
            pass
        return cls(path=path, signature=signature, entries=entries)

    def lookup(
        self, filepath: str,
    ) -> Optional[Tuple[List[Finding], List[Tuple[int, str]]]]:
        """Cached ``(findings, used_suppressions)`` if the file is
        unchanged, else None."""
        entry = self.entries.get(filepath)
        if entry is None:
            self.misses += 1
            return None
        try:
            stat = os.stat(filepath)
        except OSError:
            self.misses += 1
            return None
        if entry.get("mtime") != stat.st_mtime or \
                entry.get("size") != stat.st_size:
            self.misses += 1
            return None
        self.hits += 1
        findings = [Finding.from_dict(d) for d in entry["findings"]]
        used = [(int(line), rule)
                for line, rule in entry.get("used_suppressions", [])]
        return findings, used

    def store(self, filepath: str, findings: Sequence[Finding],
              used_suppressions: Sequence[Tuple[int, str]]) -> None:
        try:
            stat = os.stat(filepath)
        except OSError:
            return
        self.entries[filepath] = {
            "mtime": stat.st_mtime,
            "size": stat.st_size,
            "findings": [f.to_dict() for f in findings],
            "used_suppressions": [[line, rule]
                                  for line, rule in used_suppressions],
        }
        self._dirty = True

    def save(self) -> None:
        if not self._dirty and self.hits == len(self.entries):
            return
        try:
            os.makedirs(os.path.dirname(self.path), exist_ok=True)
            with open(self.path, "w", encoding="utf-8") as fh:
                json.dump({"signature": self.signature,
                           "entries": self.entries}, fh)
        except OSError:
            pass  # a cache that cannot persist is merely cold next run
