"""The unified finding record shared by every static-analysis layer.

A finding is one diagnosed problem: which rule fired, where, how bad.
The AST lint, the interprocedural dataflow analyzer, the topology/config
validator, and the fabric analyzer all emit this one dataclass, so
``repro-noc check`` can aggregate, baseline, and export them uniformly.

Severity is a three-level scale (``error`` > ``warn`` > ``info``); the
legacy spelling ``"warning"`` is normalized to ``"warn"`` on the way in
so old JSON reports and baselines keep working.

Every finding carries a **fingerprint**: a short stable hash of the rule,
the normalized path, and the *content* of the flagged line (not its
number), so inserting blank lines or comments above a finding does not
change its identity.  Fingerprints are what the check baseline
(:mod:`repro.lint.baseline`) and the SARIF exporter
(:mod:`repro.lint.sarif`) key on.
"""

from __future__ import annotations

import hashlib
import re
from dataclasses import dataclass, field
from typing import Optional


class Severity:
    """Finding severities (plain strings so findings serialize cleanly)."""

    ERROR = "error"
    WARN = "warn"
    #: Legacy alias — older code and serialized reports said "warning".
    WARNING = WARN
    INFO = "info"

    #: Rank order for gating (``--fail-on``): higher is worse.
    RANK = {INFO: 0, WARN: 1, ERROR: 2}

    @staticmethod
    def normalize(value: str) -> str:
        """Map legacy spellings onto the canonical three levels."""
        if value == "warning":
            return Severity.WARN
        return value


_WS = re.compile(r"\s+")


def normalize_context(text: str) -> str:
    """Canonical form of a source line for fingerprinting.

    Collapses all whitespace so reformatting (indentation shifts, tab
    vs space) does not move a finding out of the baseline.
    """
    return _WS.sub(" ", text.strip())


def normalize_path(path: Optional[str]) -> str:
    """Machine-independent form of a finding path.

    Lint paths are absolute (wherever the package is installed); the
    baseline must match across checkouts, so the path is cut down to the
    ``repro/``-rooted suffix when one exists, else the basename.
    """
    if not path:
        return ""
    posix = path.replace("\\", "/")
    idx = posix.rfind("/repro/")
    if idx >= 0:
        return posix[idx + 1:]
    if posix.startswith("repro/"):
        return posix
    return posix.rsplit("/", 1)[-1]


@dataclass(frozen=True)
class Finding:
    """One diagnosed problem from any checker layer."""

    rule: str
    message: str
    severity: str = Severity.ERROR
    #: Source file (lint/dataflow) or scenario file (validator); None
    #: for checks on in-memory specs.
    path: Optional[str] = None
    line: Optional[int] = None
    col: Optional[int] = None
    #: The source line (or other stable content) the finding anchors to;
    #: feeds the fingerprint so line renumbering cannot move a finding
    #: in or out of the baseline.  Falls back to the message when the
    #: emitting layer has no source text (e.g. validator findings).
    context: Optional[str] = field(default=None, compare=False)

    def __post_init__(self) -> None:
        object.__setattr__(self, "severity",
                           Severity.normalize(self.severity))

    @property
    def is_error(self) -> bool:
        return self.severity == Severity.ERROR

    @property
    def rank(self) -> int:
        return Severity.RANK.get(self.severity, Severity.RANK[Severity.ERROR])

    @property
    def fingerprint(self) -> str:
        """Line-shift-stable identity: rule + normalized path + context."""
        context = self.context if self.context is not None else self.message
        payload = "\x00".join(
            (self.rule, normalize_path(self.path), normalize_context(context)))
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:16]

    def format(self) -> str:
        loc = ""
        if self.path is not None:
            loc = self.path
            if self.line is not None:
                loc += f":{self.line}"
                if self.col is not None:
                    loc += f":{self.col}"
            loc += ": "
        return f"{loc}{self.severity}: [{self.rule}] {self.message}"

    def to_dict(self) -> dict:
        return {
            "rule": self.rule,
            "message": self.message,
            "severity": self.severity,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "context": self.context,
            "fingerprint": self.fingerprint,
        }

    @classmethod
    def from_dict(cls, raw: dict) -> "Finding":
        return cls(rule=raw["rule"], message=raw["message"],
                   severity=Severity.normalize(raw.get("severity", "error")),
                   path=raw.get("path"), line=raw.get("line"),
                   col=raw.get("col"), context=raw.get("context"))
