"""The finding record shared by the lint rules and the config validator.

A finding is one diagnosed problem: which rule fired, where, how bad.
``repro-noc check`` aggregates findings from every layer and exits
non-zero iff any of them is an error.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional


class Severity:
    """Finding severities (plain strings so findings serialize cleanly)."""

    ERROR = "error"
    WARNING = "warning"


@dataclass(frozen=True)
class Finding:
    """One diagnosed problem from any checker layer."""

    rule: str
    message: str
    severity: str = Severity.ERROR
    #: Source file (lint) or scenario file (validator); None for checks
    #: on in-memory specs.
    path: Optional[str] = None
    line: Optional[int] = None
    col: Optional[int] = None

    @property
    def is_error(self) -> bool:
        return self.severity == Severity.ERROR

    def format(self) -> str:
        loc = ""
        if self.path is not None:
            loc = self.path
            if self.line is not None:
                loc += f":{self.line}"
                if self.col is not None:
                    loc += f":{self.col}"
            loc += ": "
        return f"{loc}{self.severity}: [{self.rule}] {self.message}"

    def to_dict(self) -> dict:
        return {
            "rule": self.rule,
            "message": self.message,
            "severity": self.severity,
            "path": self.path,
            "line": self.line,
            "col": self.col,
        }
