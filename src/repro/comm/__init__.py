"""Baseband-processor scenario (the paper's third deployment).

The abstract claims the NoC "is portable and can be used in diverse
scenarios, like Server-CPU, AI-Processor, and Baseband-Processor", and
Section 2.1's Lego catalogue includes the Communication Die (DSPs and
protocol accelerators, Table 1).  This package assembles that scenario
from the same parts: a communication die (full ring of DSP nodes) and an
IO die (half ring carrying the antenna front-end and the protocol
accelerator), joined by an RBRG-L2.

The workload is the defining one for a wireless station: *periodic
frames with deadlines*.  Antenna data arrives every ``frame_interval``
cycles, is sprayed across the DSP nodes, and the processed symbols must
all reach the protocol accelerator before the next frame — the metric is
the deadline hit rate and the latency jitter, not raw bandwidth.
"""

from repro.comm.baseband import (
    BasebandConfig,
    BasebandStation,
    FrameStats,
)

__all__ = ["BasebandConfig", "BasebandStation", "FrameStats"]
