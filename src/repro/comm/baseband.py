"""Baseband station: periodic frame processing over the multi-ring NoC.

Pipeline per frame (one LTE/NR-style symbol period):

1. the **antenna front-end** (IO die) emits ``chunks_per_frame`` sample
   bursts, sprayed round-robin across the DSP nodes (communication die);
2. each **DSP node** spends ``dsp_cycles`` on a chunk (FFT/equalize) and
   ships the result to the **protocol accelerator** (IO die);
3. the accelerator closes the frame when every chunk arrived; a frame
   *misses its deadline* if it closes later than ``frame_interval``
   cycles after its start.

All transport is ordinary fabric traffic — the same cross stations,
tags, and RBRG-L2 as the other two scenarios.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.coherence.agent import ProtocolAgent
from repro.core.config import MultiRingConfig
from repro.core.network import MultiRingFabric
from repro.core.topology import TopologyBuilder
from repro.fabric.interface import Fabric
from repro.fabric.message import MessageKind
from repro.sim.engine import SimComponent


@dataclass
class BbMessage:
    """Payload on the baseband fabric: one sample/symbol chunk."""

    op: str           # "samples" (antenna->DSP) | "symbols" (DSP->sink)
    frame: int
    chunk: int
    data_bytes: Optional[int] = 256

    @property
    def transport_kind(self) -> MessageKind:
        return MessageKind.DATA


@dataclass
class BasebandConfig:
    """Sizing and timing of the station."""

    n_dsp: int = 8
    chunks_per_frame: int = 16
    #: Cycles between frame starts — also the processing deadline.
    frame_interval: int = 400
    #: DSP compute time per chunk.
    dsp_cycles: int = 60
    n_frames: int = 20
    stop_spacing: int = 2

    def __post_init__(self) -> None:
        if self.n_dsp < 1 or self.chunks_per_frame < 1:
            raise ValueError("need at least one DSP and one chunk")
        if self.frame_interval < 1:
            raise ValueError("frame interval must be positive")


@dataclass
class FrameStats:
    """Per-frame completion record."""

    frame: int
    start_cycle: int
    complete_cycle: Optional[int] = None

    @property
    def latency(self) -> Optional[int]:
        if self.complete_cycle is None:
            return None
        return self.complete_cycle - self.start_cycle


class AntennaFrontEnd(ProtocolAgent):
    """Emits one frame of sample chunks every ``frame_interval`` cycles."""

    def __init__(self, node_id: int, fabric: Fabric, config: BasebandConfig,
                 dsp_nodes: List[int]):
        super().__init__(node_id, fabric, name="antenna")
        self.config = config
        self.dsp_nodes = dsp_nodes
        self.frames_emitted = 0

    def step(self, cycle: int) -> None:
        super().step(cycle)
        cfg = self.config
        if (self.frames_emitted < cfg.n_frames
                and cycle == self.frames_emitted * cfg.frame_interval):
            frame = self.frames_emitted
            for chunk in range(cfg.chunks_per_frame):
                dsp = self.dsp_nodes[chunk % len(self.dsp_nodes)]
                self.send(dsp, BbMessage("samples", frame, chunk))
            self.frames_emitted += 1

    def on_message(self, payload, src, cycle):
        raise RuntimeError("antenna front-end receives nothing")


class DspNode(ProtocolAgent):
    """Processes sample chunks and forwards symbols to the accelerator."""

    def __init__(self, node_id: int, fabric: Fabric, config: BasebandConfig,
                 sink_node: int, index: int):
        super().__init__(node_id, fabric, name=f"dsp{index}")
        self.config = config
        self.sink_node = sink_node
        self.chunks_processed = 0
        self._busy_until = 0

    def on_message(self, payload: BbMessage, src: int, cycle: int) -> None:
        if payload.op != "samples":
            raise RuntimeError(f"{self.name}: unexpected {payload.op}")
        # Single execution unit: chunks queue behind each other.
        start = max(cycle, self._busy_until)
        self._busy_until = start + self.config.dsp_cycles
        self.after(self._busy_until - cycle,
                   lambda c, m=payload: self._emit(m))

    def _emit(self, payload: BbMessage) -> None:
        self.chunks_processed += 1
        self.send(self.sink_node,
                  BbMessage("symbols", payload.frame, payload.chunk))


class ProtocolAccelerator(ProtocolAgent):
    """Collects symbols; closes frames; tracks deadlines."""

    def __init__(self, node_id: int, fabric: Fabric, config: BasebandConfig):
        super().__init__(node_id, fabric, name="protocol-acc")
        self.config = config
        self.frames: Dict[int, FrameStats] = {}
        self._received: Dict[int, int] = {}

    def on_message(self, payload: BbMessage, src: int, cycle: int) -> None:
        if payload.op != "symbols":
            raise RuntimeError(f"{self.name}: unexpected {payload.op}")
        cfg = self.config
        stats = self.frames.setdefault(
            payload.frame,
            FrameStats(payload.frame, payload.frame * cfg.frame_interval),
        )
        self._received[payload.frame] = self._received.get(payload.frame, 0) + 1
        if self._received[payload.frame] == cfg.chunks_per_frame:
            stats.complete_cycle = cycle

    @property
    def completed_frames(self) -> List[FrameStats]:
        return [f for f in self.frames.values() if f.complete_cycle is not None]


class BasebandStation(SimComponent):
    """Communication die + IO die assembled for frame processing."""

    def __init__(self, config: Optional[BasebandConfig] = None,
                 ring_config: Optional[MultiRingConfig] = None):
        self.config = cfg = config or BasebandConfig()
        builder = TopologyBuilder()
        # Communication die: full ring of DSP nodes (stations at >=1 so
        # stop 0 stays free for the bridge).
        n_stations = (cfg.n_dsp + 1) // 2 + 1
        builder.add_ring(0, max(2, n_stations * cfg.stop_spacing), True)
        dsp_nodes = [
            builder.add_node(0, ((i // 2) + 1) * cfg.stop_spacing)
            for i in range(cfg.n_dsp)
        ]
        # IO die: half ring with the antenna and the accelerator.
        builder.add_ring(100, max(2, 4 * cfg.stop_spacing), False)
        antenna_node = builder.add_node(100, cfg.stop_spacing)
        sink_node = builder.add_node(100, 2 * cfg.stop_spacing)
        builder.add_bridge(0, 0, 100, 0, level=2)
        self.fabric = MultiRingFabric(builder.build(),
                                      ring_config or MultiRingConfig())

        self.antenna = AntennaFrontEnd(antenna_node, self.fabric, cfg,
                                       dsp_nodes)
        self.sink = ProtocolAccelerator(sink_node, self.fabric, cfg)
        self.dsps = [
            DspNode(node, self.fabric, cfg, sink_node, i)
            for i, node in enumerate(dsp_nodes)
        ]
        self._agents = [self.antenna, self.sink] + self.dsps
        self._cycle = 0

    def step(self, cycle: int) -> None:
        for agent in self._agents:
            agent.step(cycle)
        self.fabric.step(cycle)
        self._cycle = cycle + 1

    def run_all_frames(self, slack_cycles: int = 5000) -> None:
        total = self.config.n_frames * self.config.frame_interval + slack_cycles
        for _ in range(total):
            self.step(self._cycle)
            if (len(self.sink.completed_frames) == self.config.n_frames
                    and self.fabric.stats.in_flight == 0):
                break

    # -- metrics --------------------------------------------------------------

    def deadline_hit_rate(self) -> float:
        frames = self.sink.completed_frames
        if not frames:
            return 0.0
        hits = sum(1 for f in frames
                   if f.latency is not None
                   and f.latency <= self.config.frame_interval)
        return hits / self.config.n_frames

    def latency_jitter(self) -> float:
        """Max - min completed-frame latency (cycles)."""
        latencies = [f.latency for f in self.sink.completed_frames
                     if f.latency is not None]
        if not latencies:
            return 0.0
        return float(max(latencies) - min(latencies))
