"""repro — a bufferless multi-ring NoC for heterogeneous chiplets.

Reproduction of *"Application Defined On-chip Networks for Heterogeneous
Chiplets: An Implementation Perspective"* (Wang, Feng, Xiang, Li, Xia —
HPCA 2022) as a production-quality Python library.

Layer map (bottom up):

- :mod:`repro.sim` — cycle-driven simulation kernel;
- :mod:`repro.fabric` — fabric-neutral message/interface/probes;
- :mod:`repro.core` — **the contribution**: bufferless multi-ring NoC
  (cross stations, I/E-tags, half/full rings, RBRG-L1/L2, SWAP);
- :mod:`repro.baselines` — comparison fabrics behind the same interface;
- :mod:`repro.coherence` — AMBA5-CHI-lite protocol substrate;
- :mod:`repro.cpu` — the Server-CPU package (~96 cores, 2 CCD + 2 IOD);
- :mod:`repro.ai` — the AI processor (multi-ring mesh, 32 cores, HBM);
- :mod:`repro.phys` — wire fabrics, repeaters, area, floorplan, energy;
- :mod:`repro.workloads` — LMBench/SPEC/SPECpower/MLPerf/roofline models;
- :mod:`repro.analysis` — metrics, knee detection, report tables.

Quickstart::

    from repro.core import MultiRingFabric, chiplet_pair
    from repro.fabric import Message, MessageKind

    topo, die0, die1 = chiplet_pair(nodes_per_ring=4)
    fabric = MultiRingFabric(topo)
    msg = Message(src=die0[0], dst=die1[2], kind=MessageKind.DATA)
    fabric.try_inject(msg)
    for cycle in range(200):
        fabric.step(cycle)
    print(msg.total_latency)
"""

from repro.params import BANDWIDTH, LATENCY, QUEUES

__version__ = "1.0.0"

# The convenience names below resolve lazily (PEP 562) so that purely
# static consumers — repro.analyze, repro.lint, repro.phys — can import
# the package without dragging in the simulator stack.
_LAZY = {
    "MultiRingFabric": "repro.core",
    "chiplet_pair": "repro.core",
    "grid_of_rings": "repro.core",
    "single_ring_topology": "repro.core",
    "Fabric": "repro.fabric",
    "Message": "repro.fabric",
    "MessageKind": "repro.fabric",
    "Simulator": "repro.sim",
}


def __getattr__(name):
    try:
        module_name = _LAZY[name]
    except KeyError:
        raise AttributeError(
            f"module {__name__!r} has no attribute {name!r}") from None
    import importlib

    value = getattr(importlib.import_module(module_name), name)
    globals()[name] = value  # cache: resolve each name once
    return value


def __dir__():
    return sorted(set(globals()) | set(_LAZY))


__all__ = [
    "MultiRingFabric",
    "chiplet_pair",
    "grid_of_rings",
    "single_ring_topology",
    "Fabric",
    "Message",
    "MessageKind",
    "Simulator",
    "LATENCY",
    "QUEUES",
    "BANDWIDTH",
    "__version__",
]
