"""Global calibration parameters shared by every experiment.

The paper evaluates real silicon; a Python reproduction cannot reproduce
absolute nanoseconds.  Instead all component latencies, widths, and service
rates live here, set once from the paper's text (Table 4, Section 3/4) and
public microarchitectural data, and are never tuned per-experiment.  Every
benchmark imports these same numbers, so cross-experiment comparisons stay
internally consistent.

All latencies are in NoC clock cycles unless stated otherwise.  The NoC
clock is 3 GHz (Section 3.3), so 1 cycle = 1/3 ns.
"""

from __future__ import annotations

from dataclasses import dataclass


#: NoC target frequency, Hz (Section 3.3: "a specific target frequency (3GHz)").
NOC_FREQ_HZ: float = 3.0e9

#: One NoC transaction carries one cache line (Section 3.4.3).
CACHE_LINE_BYTES: int = 64

#: Header bits attached to every flit (bufferless NoCs route per-flit,
#: Section 3.4.3 "header information be transmitted with each flit").
FLIT_HEADER_BITS: int = 40

#: Payload bits of a data-carrying flit.
FLIT_DATA_BITS: int = CACHE_LINE_BYTES * 8


@dataclass(frozen=True)
class LatencyParams:
    """Fixed component latencies (cycles) used across all system models."""

    #: L3 tag slice lookup (hybrid L3, Section 3.2.1).
    l3_tag_lookup: int = 5
    #: L3 data slice access (high-capacity SRAM).
    l3_data_access: int = 12
    #: Home-node directory lookup inside the LLC/HN-F agent.
    directory_lookup: int = 4
    #: Requester-side pipeline (request formation, MSHR allocate).
    requester_pipeline: int = 3
    #: DDR controller service latency (queue-empty, row-hit mix).
    ddr_service: int = 60
    #: HBM service latency (queue-empty).
    hbm_service: int = 30
    #: RBRG-L1 traversal (buffering + route-info regeneration, Section 4.1.3).
    bridge_l1: int = 2
    #: RBRG-L2 traversal excluding the die-to-die link itself.
    bridge_l2: int = 4
    #: Die-to-die parallel-IO link one-way latency (in-house PHY, Section 4.1.3).
    d2d_link: int = 8
    #: Inter-package SerDes link via the Protocol Adapter (Section 4.2).
    serdes_link: int = 40
    #: Snoop response generation inside an owning cache.
    snoop_response: int = 4


@dataclass(frozen=True)
class QueueParams:
    """Queue depths for stations and bridges (small, per Section 3.4.2)."""

    inject_queue_depth: int = 4
    eject_queue_depth: int = 4
    bridge_rx_depth: int = 8
    bridge_tx_depth: int = 8
    bridge_reserved_tx: int = 4
    #: Consecutive injection failures before an I-tag is placed (4.1.2).
    itag_threshold: int = 8
    #: Consecutive injection failures at an RBRG-L2 station that signal a
    #: cross-ring deadlock (Section 4.4).
    swap_detect_threshold: int = 64
    #: Occupied reserved-Tx count below which DRM exits (Section 4.4).
    swap_exit_threshold: int = 1


@dataclass(frozen=True)
class BandwidthParams:
    """Bandwidths of memory endpoints, in bytes per NoC cycle."""

    #: One DDR4 channel ~25.6 GB/s at 3 GHz NoC -> ~8.5 B/cycle.
    ddr_channel_bytes_per_cycle: float = 8.5
    #: One HBM stack 500 GB/s (Section 3.2.2) -> ~167 B/cycle.
    hbm_stack_bytes_per_cycle: float = 167.0
    #: Ring link width: 64-byte flit moves one hop per cycle, so one lane
    #: carries 64 B/cycle = 192 GB/s at 3 GHz.
    ring_lane_bytes_per_cycle: int = CACHE_LINE_BYTES


LATENCY = LatencyParams()
QUEUES = QueueParams()
BANDWIDTH = BandwidthParams()


def cycles_to_ns(cycles: float) -> float:
    """Convert NoC cycles to nanoseconds at the 3 GHz design point."""
    return cycles / NOC_FREQ_HZ * 1e9


def bytes_per_cycle_to_tbps(bytes_per_cycle: float) -> float:
    """Convert a bytes/cycle rate to TB/s at the 3 GHz design point."""
    return bytes_per_cycle * NOC_FREQ_HZ / 1e12
