"""Counterexample serialization and replay on the real simulator.

A model-checker :class:`~repro.verify.model.Violation` carries a
deterministic injection schedule.  This module packages it — together
with the exact topology and config — as a :class:`Counterexample` that
round-trips through JSON, and re-executes it on a genuine
:class:`repro.sim.engine.Simulator` (injector component first, fabric
second, invariant probe last — the standard wiring) in either fast-path
mode.  A confirmed replay means the abstraction in
:mod:`repro.verify.state` did not invent the bug: the shipping simulator
exhibits it too.
"""

from __future__ import annotations

import dataclasses
import json
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.core.config import MultiRingConfig
from repro.core.network import MultiRingFabric
from repro.core.serialize import topology_from_dict, topology_to_dict
from repro.fabric.message import Message
from repro.lint.invariants import FabricInvariantChecker, InvariantViolation
from repro.params import QueueParams
from repro.sim.engine import FunctionComponent, Simulator
from repro.verify.model import Violation
from repro.verify.state import _discard, encode_state

#: Counterexample file format version (bumped on incompatible change).
CE_FORMAT_VERSION = 1


def config_to_dict(config: MultiRingConfig) -> dict:
    """Serialize a config for counterexample files (baseline link only)."""
    if config.reliability is not None:
        raise ValueError("counterexamples cover the baseline link only; "
                         "config.reliability must be None")
    out = {
        field_.name: getattr(config, field_.name)
        for field_ in dataclasses.fields(MultiRingConfig)
        if field_.name not in ("queues", "reliability")
    }
    out["queues"] = dataclasses.asdict(config.queues)
    return out


def config_from_dict(raw: dict) -> MultiRingConfig:
    kwargs = dict(raw)
    queues = QueueParams(**kwargs.pop("queues", {}))
    return MultiRingConfig(queues=queues, **kwargs)


@dataclass
class Counterexample:
    """A violating run: what broke, on which fabric, under which schedule.

    ``schedule[c]`` lists the (src, dst) injections offered at cycle
    ``c``; trailing empty entries are the injection-free drain cycles of
    a liveness counterexample.
    """

    kind: str
    rule: str
    cycle: int
    message: str
    topology: dict
    config: dict
    schedule: List[List[Tuple[int, int]]]
    max_extra_laps: Optional[int] = None

    @classmethod
    def from_violation(cls, violation: Violation, spec, config,
                       max_extra_laps: Optional[int] = None
                       ) -> "Counterexample":
        return cls(
            kind=violation.kind,
            rule=violation.rule,
            cycle=violation.cycle,
            message=violation.message,
            topology=topology_to_dict(spec),
            config=config_to_dict(config),
            schedule=[[tuple(p) for p in step]
                      for step in violation.schedule],
            max_extra_laps=max_extra_laps,
        )

    def to_dict(self) -> dict:
        return {
            "version": CE_FORMAT_VERSION,
            "kind": self.kind,
            "rule": self.rule,
            "cycle": self.cycle,
            "message": self.message,
            "topology": self.topology,
            "config": self.config,
            "schedule": [[list(pair) for pair in step]
                         for step in self.schedule],
            "max_extra_laps": self.max_extra_laps,
        }

    @classmethod
    def from_dict(cls, raw: dict) -> "Counterexample":
        version = raw.get("version")
        if version != CE_FORMAT_VERSION:
            raise ValueError(
                f"unsupported counterexample version {version!r} "
                f"(expected {CE_FORMAT_VERSION})")
        return cls(
            kind=raw["kind"],
            rule=raw["rule"],
            cycle=raw["cycle"],
            message=raw.get("message", ""),
            topology=raw["topology"],
            config=raw["config"],
            schedule=[[tuple(pair) for pair in step]
                      for step in raw["schedule"]],
            max_extra_laps=raw.get("max_extra_laps"),
        )

    def save(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(self.to_dict(), fh, indent=2, sort_keys=True)
            fh.write("\n")

    @classmethod
    def load(cls, path: str) -> "Counterexample":
        with open(path, "r", encoding="utf-8") as fh:
            return cls.from_dict(json.load(fh))


@dataclass
class ReplayResult:
    confirmed: bool
    fast_path: bool
    expected_rule: str
    observed_rule: Optional[str] = None
    observed_cycle: Optional[int] = None
    detail: str = ""
    rejected_injections: int = 0

    def to_dict(self) -> dict:
        return dataclasses.asdict(self)


def replay_counterexample(
    ce: Counterexample,
    fast_path: bool = True,
    max_free_cycles: int = 512,
) -> ReplayResult:
    """Re-execute a counterexample schedule on the real simulator.

    Safety counterexamples confirm when the invariant probe raises
    during the schedule; liveness counterexamples confirm when, after
    the schedule, injection-free stepping either repeats a state with
    flits still in flight (livelock) or never drains / never shows every
    SWAP controller out of DRM within ``max_free_cycles``.
    """
    spec = topology_from_dict(ce.topology)
    config = config_from_dict(ce.config)
    fabric = MultiRingFabric(spec, config)
    fabric.stats.keep_samples = False
    for node in fabric.nodes():
        fabric.attach(node, _discard)
    fabric.set_fast_path(fast_path)
    checker = FabricInvariantChecker(fabric,
                                     max_extra_laps=ce.max_extra_laps)

    schedule = ce.schedule
    rejected = [0]

    def inject(cycle: int) -> None:
        if cycle < len(schedule):
            for src, dst in schedule[cycle]:
                accepted = fabric.try_inject(
                    Message(src=src, dst=dst, payload=None))
                if not accepted:
                    rejected[0] += 1

    sim = Simulator()
    sim.register(FunctionComponent(inject, "counterexample-injector"))
    sim.register(fabric)
    sim.register_invariant(checker.check)

    result = ReplayResult(confirmed=False, fast_path=fast_path,
                          expected_rule=ce.rule,
                          rejected_injections=0)
    try:
        sim.run(len(schedule))
    except InvariantViolation as exc:
        result.confirmed = True
        result.observed_rule = exc.rule
        result.observed_cycle = exc.cycle
        result.detail = str(exc)
        result.rejected_injections = rejected[0]
        return result

    result.rejected_injections = rejected[0]
    if ce.kind == "safety":
        result.detail = ("schedule completed without an invariant "
                         "violation")
        return result

    # Liveness: keep stepping with no injections and watch for a lasso,
    # a refusal to drain, or a SWAP controller that never leaves DRM.
    seen = set()
    drm_pending = None
    post_drain_checks = 0
    for _ in range(max_free_cycles):
        if fabric.occupancy() == 0:
            if drm_pending is None:
                drm_pending = [
                    sc for bridge in fabric.bridges
                    for sc in (getattr(bridge, "swap_a", None),
                               getattr(bridge, "swap_b", None))
                    if sc is not None and sc.in_drm]
            drm_pending = [sc for sc in drm_pending if sc.in_drm]
            post_drain_checks += 1
            if not drm_pending:
                result.detail = ("network drained and every SWAP "
                                 "controller left DRM; not reproduced")
                return result
            if post_drain_checks > 8:
                result.confirmed = True
                result.observed_rule = "drm-stuck"
                result.observed_cycle = sim.cycle
                result.detail = (f"{len(drm_pending)} SWAP controller(s) "
                                 "still in DRM after drain")
                return result
        key = encode_state(fabric, sim.cycle)
        if key in seen and fabric.occupancy() > 0:
            result.confirmed = True
            result.observed_rule = "livelock"
            result.observed_cycle = sim.cycle
            result.detail = (f"state repeats with {fabric.occupancy()} "
                             "flit(s) in flight; they can never eject")
            return result
        seen.add(key)
        try:
            sim.step()
        except InvariantViolation as exc:
            result.confirmed = True
            result.observed_rule = exc.rule
            result.observed_cycle = exc.cycle
            result.detail = str(exc)
            return result
    result.confirmed = fabric.occupancy() > 0
    if result.confirmed:
        result.observed_rule = "livelock"
        result.observed_cycle = sim.cycle
        result.detail = (f"{fabric.occupancy()} flit(s) still in flight "
                         f"after {max_free_cycles} injection-free cycles")
    else:
        result.detail = "network drained; not reproduced"
    return result
