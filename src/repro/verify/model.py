"""Explicit-state bounded model checking of small fabrics.

A Murphi-style explicit-state search over the *real* simulator classes:
states are whole :class:`MultiRingFabric` instances, transitions are
``fabric.step`` under every admissible injection choice, and the visited
set keys on the canonical encoding of :mod:`repro.verify.state`.  There
is no abstract model to drift out of sync — what is checked is the code
that runs.

Checked properties:

- **Safety** — the runtime invariants of
  :class:`repro.lint.invariants.FabricInvariantChecker` (flit
  conservation, the one-lap/4×slot-capacity deflection bound, E-tag and
  I-tag consistency) are attached to every explored fabric and any
  :class:`InvariantViolation` raised inside a step becomes a
  counterexample path.
- **Liveness** — from every newly reached state, a *drain probe* clone
  is stepped with no further injections: if the network fails to empty
  before a state repeats, that lasso is a livelock/deadlock
  counterexample ("every injected flit eventually ejects" fails); once
  empty, every RBRG-L2 SWAP controller must be observed out of DRM
  within a few cycles ("DRM always exits").

Exploration is depth-first with the *largest* injection choice explored
first: the aggressive all-pairs path reproduces a saturation hammer, so
configurations that wedge (SWAP disabled) produce a counterexample long
before the budget is spent, while healthy configurations are enumerated
exhaustively within the in-flight bound.

Budgets cap both the visited-state count and total transitions (drain
probe steps included); ``ModelCheckResult.exhaustive`` reports whether
the frontier was fully drained within them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import combinations
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.bridge import RingBridgeL2
from repro.core.config import MultiRingConfig, TopologySpec
from repro.fabric.message import Message
from repro.lint.invariants import InvariantViolation
from repro.verify.state import build_model_fabric, clone_fabric, encode_state

#: Injection schedules are lists (one entry per cycle) of (src, dst)
#: node pairs offered to ``try_inject`` that cycle.
Schedule = List[List[Tuple[int, int]]]


@dataclass
class Violation:
    """One property violation with a deterministic reproduction schedule."""

    kind: str  # "safety" | "liveness"
    rule: str  # invariant rule id, or "livelock" / "drm-stuck"
    cycle: int
    message: str
    schedule: Schedule

    def to_dict(self) -> dict:
        return {
            "kind": self.kind,
            "rule": self.rule,
            "cycle": self.cycle,
            "message": self.message,
            "schedule": [[list(pair) for pair in step]
                         for step in self.schedule],
        }


@dataclass
class ModelCheckResult:
    states: int = 0
    transitions: int = 0
    max_depth: int = 0
    exhaustive: bool = False
    budget_hit: bool = False
    drain_inconclusive: int = 0
    violations: List[Violation] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.violations

    def to_dict(self) -> dict:
        return {
            "states": self.states,
            "transitions": self.transitions,
            "max_depth": self.max_depth,
            "exhaustive": self.exhaustive,
            "budget_hit": self.budget_hit,
            "drain_inconclusive": self.drain_inconclusive,
            "violations": [v.to_dict() for v in self.violations],
        }


class ModelChecker:
    """Bounded exhaustive exploration of one (topology, config) pair.

    ``pairs`` are the (src, dst) node pairs the environment may inject;
    by default every ordered pair of distinct nodes.  ``max_in_flight``
    bounds network occupancy (the "bounded in-flight flits" of the
    subsystem contract); ``max_states``/``max_transitions`` bound the
    search itself.
    """

    def __init__(
        self,
        spec: TopologySpec,
        config: MultiRingConfig,
        pairs: Optional[Sequence[Tuple[int, int]]] = None,
        *,
        max_states: int = 5000,
        max_transitions: Optional[int] = None,
        max_in_flight: int = 3,
        max_drain_cycles: int = 256,
        max_violations: int = 1,
        liveness: bool = True,
        max_extra_laps: Optional[int] = None,
    ):
        self.spec = spec
        self.config = config
        if pairs is None:
            nodes = sorted(p.node for p in spec.nodes)
            pairs = [(a, b) for a in nodes for b in nodes if a != b]
        self.pairs = list(pairs)
        self.max_states = max_states
        self.max_transitions = (max_transitions if max_transitions is not None
                                else 20 * max_states)
        self.max_in_flight = max_in_flight
        self.max_drain_cycles = max_drain_cycles
        self.max_violations = max_violations
        self.liveness = liveness
        self.max_extra_laps = max_extra_laps

        self._choice_menu = self._build_choices()
        self._visited: Dict[Tuple, Tuple] = {}
        self._drains_ok: set = set()
        self._result = ModelCheckResult()

    def _build_choices(self) -> List[Tuple[Tuple[int, int], ...]]:
        """All injection choices, ascending by size (largest popped first).

        With more than four pairs the full powerset explodes, so the
        menu degrades to nothing / each singleton / everything — the
        extremes that matter for wedging and for coverage.
        """
        pairs = self.pairs
        if len(pairs) <= 4:
            menu: List[Tuple[Tuple[int, int], ...]] = []
            for size in range(len(pairs) + 1):
                menu.extend(combinations(pairs, size))
            return menu
        singles = [(p,) for p in pairs]
        return [()] + singles + [tuple(pairs)]

    # -- schedules ---------------------------------------------------------

    def _schedule_to(self, key: Tuple) -> Schedule:
        steps: Schedule = []
        cur = key
        while True:
            parent, choice, _ = self._visited[cur]
            if parent is None:
                break
            steps.append([tuple(p) for p in choice])
            cur = parent
        steps.reverse()
        return steps

    # -- liveness: drain analysis ------------------------------------------

    def _drm_exit_violation(self, fabric, cycle: int,
                            schedule: Schedule) -> Optional[Violation]:
        """After the network empties, every SWAP controller must be
        observed out of DRM within a few cycles (it may flap back in on
        stale failure counters; *eventually observed out* is the
        property)."""
        pending = []
        for bridge in fabric.bridges:
            if isinstance(bridge, RingBridgeL2):
                pending.extend([bridge.swap_a, bridge.swap_b])
        pending = [sc for sc in pending if sc.in_drm]
        for extra in range(4):
            if not pending:
                return None
            fabric.step(cycle + extra)
            self._result.transitions += 1
            schedule.append([])
            pending = [sc for sc in pending if sc.in_drm]
        if pending:
            return Violation(
                kind="liveness", rule="drm-stuck", cycle=cycle + 4,
                message=f"{len(pending)} SWAP controller(s) never observed "
                        "out of DRM after the network drained",
                schedule=schedule)
        return None

    def _check_drain(self, fabric, key: Tuple,
                     cycle: int) -> Optional[Violation]:
        """Prove this state drains: no injections until empty, then DRM
        exits.  Memoized on canonical keys — every state along a proven
        drain path is itself proven."""
        if key in self._drains_ok:
            return None
        probe = clone_fabric(fabric)
        seen = {key}
        path_keys = [key]
        drained_in = 0
        for drained_in in range(1, self.max_drain_cycles + 1):
            if self._over_budget():
                self._result.drain_inconclusive += 1
                return None
            step_cycle = cycle + drained_in - 1
            try:
                probe.step(step_cycle)
            except InvariantViolation as exc:
                schedule = self._schedule_to(key)
                schedule.extend([[]] * drained_in)
                return Violation(
                    kind="safety", rule=exc.rule, cycle=step_cycle,
                    message=f"{exc} (while draining with no further "
                            "injections)",
                    schedule=schedule)
            self._result.transitions += 1
            if probe.occupancy() == 0:
                schedule = self._schedule_to(key)
                schedule.extend([[]] * drained_in)
                violation = self._drm_exit_violation(
                    probe, cycle + drained_in, schedule)
                if violation is None:
                    self._drains_ok.update(path_keys)
                return violation
            probe_key = encode_state(probe, cycle + drained_in)
            if probe_key in self._drains_ok:
                self._drains_ok.update(path_keys)
                return None
            if probe_key in seen:
                schedule = self._schedule_to(key)
                schedule.extend([[]] * drained_in)
                return Violation(
                    kind="liveness", rule="livelock",
                    cycle=cycle + drained_in,
                    message=f"state repeats after {drained_in} injection-"
                            f"free cycles with {probe.occupancy()} flit(s) "
                            "still in flight; they can never eject",
                    schedule=schedule)
            seen.add(probe_key)
            path_keys.append(probe_key)
        self._result.drain_inconclusive += 1
        return None

    # -- main search --------------------------------------------------------

    def _over_budget(self) -> bool:
        over = (len(self._visited) >= self.max_states
                or self._result.transitions >= self.max_transitions)
        if over:
            self._result.budget_hit = True
        return over

    def run(self) -> ModelCheckResult:
        result = self._result
        base = build_model_fabric(self.spec, self.config)
        base.attach_invariant_checker(max_extra_laps=self.max_extra_laps)
        root_key = encode_state(base, 0)
        self._visited = {root_key: (None, (), 0)}
        stack = [(base, root_key, 0)]

        while stack and len(result.violations) < self.max_violations:
            if self._over_budget():
                break
            fabric, key, depth = stack.pop()
            occupancy = fabric.occupancy()
            for choice in self._choice_menu:
                if self._over_budget():
                    break
                if occupancy + len(choice) > self.max_in_flight:
                    continue
                child = clone_fabric(fabric)
                accepted = tuple(
                    pair for pair in choice
                    if child.try_inject(Message(src=pair[0], dst=pair[1],
                                                payload=None)))
                try:
                    child.step(depth)
                except InvariantViolation as exc:
                    schedule = self._schedule_to(key)
                    schedule.append([tuple(p) for p in accepted])
                    result.violations.append(Violation(
                        kind="safety", rule=exc.rule, cycle=depth,
                        message=str(exc), schedule=schedule))
                    if len(result.violations) >= self.max_violations:
                        break
                    continue
                result.transitions += 1
                child_key = encode_state(child, depth + 1)
                if child_key in self._visited:
                    continue
                self._visited[child_key] = (key, accepted, depth + 1)
                result.max_depth = max(result.max_depth, depth + 1)
                if self.liveness:
                    violation = self._check_drain(child, child_key, depth + 1)
                    if violation is not None:
                        result.violations.append(violation)
                        if len(result.violations) >= self.max_violations:
                            break
                        continue
                stack.append((child, child_key, depth + 1))

        result.states = len(self._visited)
        result.exhaustive = (not stack
                             and not result.budget_hit
                             and result.drain_inconclusive == 0
                             and not result.violations)
        return result
