"""Canonical state encoding and fabric cloning for the model checker.

The explicit-state checker (:mod:`repro.verify.model`) explores the
reachable states of a small :class:`MultiRingFabric`.  Two things make
that tractable:

- **Cloning** — :func:`clone_fabric` deep-copies a whole fabric per
  explored transition, sharing the immutable topology, config and
  router (the core classes carry ``__deepcopy__`` hooks for their
  fixed-size slot containers).
- **Canonicalization** — :func:`encode_state` maps a fabric onto a
  hashable tuple in which every monotonic counter is abstracted away,
  so behaviourally identical states collide:

  - lanes are encoded in the *stop frame* (which stop each flit is
    passing), making the encoding shift-invariant in time; when escape
    slots are on, the slot pattern breaks that symmetry and the ring
    snapshot includes ``cycle % nstops`` as a phase;
  - message ids are renamed to dense canonical ids in a deterministic
    scan order (rings by id → lanes → slots by stop → stations by stop
    → ports → bridges in fabric order), so the same configuration
    reached via differently-numbered messages is one state;
  - a port's ``consecutive_failures`` collapses to
    ``(min(f, swap_detect_threshold), f % itag_threshold)`` — the only
    two observations the fabric ever makes of it (SWAP detection is a
    ``>=`` test and I-tag placement a modulo test, both preserved by
    this abstraction);
  - bridge pipeline ready-cycles are stored relative to *now* and
    clamped at zero;
  - pure bookkeeping (stats counters, ``Flit.deflections``, cached
    direction preferences) is excluded.  ``laps_deflected`` *is*
    included: the deflection-bound invariant reads it, so it is
    observable behaviour.
"""

from __future__ import annotations

import copy
from typing import Dict, List, Tuple

from repro.core.config import MultiRingConfig, TopologySpec
from repro.core.flit import Flit
from repro.core.network import MultiRingFabric
from repro.fabric.message import Message


def _discard(msg: Message) -> None:
    """Delivery handler for model fabrics: drop the message.

    Without a handler the fabric hoards delivered messages in
    ``_undelivered``, which would bloat every clone.
    """


def build_model_fabric(spec: TopologySpec,
                       config: MultiRingConfig) -> MultiRingFabric:
    """A fabric wired for model checking: no-op delivery, no samples."""
    if config.reliability is not None:
        raise ValueError(
            "model checking covers the baseline link only; the reliable "
            "link layer's sequence/replay state is out of scope "
            "(set config.reliability=None)")
    fabric = MultiRingFabric(spec, config)
    fabric.stats.keep_samples = False
    for node in fabric.nodes():
        fabric.attach(node, _discard)
    return fabric


def clone_fabric(fabric: MultiRingFabric) -> MultiRingFabric:
    """Deep-copy a fabric, sharing its immutable topology/config/router."""
    memo = {
        id(fabric.topology): fabric.topology,
        id(fabric.config): fabric.config,
    }
    return copy.deepcopy(fabric, memo)


class _Encoder:
    """Single-use canonical renamer for one :func:`encode_state` call."""

    def __init__(self, config: MultiRingConfig):
        self._config = config
        self._cids: Dict[int, int] = {}

    # -- pass 1: assign canonical ids in scan order -----------------------

    def collect(self, obj) -> None:
        if isinstance(obj, Flit):
            mid = obj.msg.msg_id
            if mid not in self._cids:
                self._cids[mid] = len(self._cids)
        elif isinstance(obj, (tuple, list)):
            for item in obj:
                self.collect(item)
        # frozensets hold msg ids, not flits; nothing to collect.

    # -- pass 2: rebuild with canonical values ----------------------------

    def flit(self, flit: Flit) -> Tuple:
        return (self._cids[flit.msg.msg_id], flit.msg.src, flit.msg.dst,
                flit.hop_index, flit.laps_deflected)

    def failures(self, count: int) -> Tuple[int, int]:
        queues = self._config.queues
        capped = min(count, queues.swap_detect_threshold)
        phase = (count % queues.itag_threshold
                 if self._config.enable_itags else 0)
        return (capped, phase)

    def port(self, snap: Tuple) -> Tuple:
        key, inject, eject, etags, failures, itag_pending, drm = snap
        live = sorted(self._cids[mid] for mid in etags if mid in self._cids)
        stale = len(etags) - len(live)
        return (
            key,
            tuple(self.flit(f) for f in inject),
            tuple(self.flit(f) for f in eject),
            (tuple(live), stale),
            self.failures(failures),
            itag_pending,
            drm,
        )

    def ring(self, snap: Tuple) -> Tuple:
        ring_id, phase, lanes, stations = snap
        lanes_enc = tuple(
            (direction,
             tuple((stop, self.flit(f)) for stop, f in flit_view),
             # I-tags store the reserving Port; its key is unique
             # fabric-wide, which is all the reservation semantics need.
             tuple((stop, tag.key) for stop, tag in tag_view))
            for direction, flit_view, tag_view in lanes)
        stations_enc = tuple(
            (stop, rr, tuple(self.port(p) for p in ports))
            for stop, rr, ports in stations)
        return (ring_id, phase, lanes_enc, stations_enc)

    def generic(self, obj):
        """Bridge snapshots: flits embedded in plain nested tuples."""
        if isinstance(obj, Flit):
            return self.flit(obj)
        if isinstance(obj, (tuple, list)):
            return tuple(self.generic(item) for item in obj)
        return obj


def encode_state(fabric: MultiRingFabric, cycle: int) -> Tuple:
    """Hashable canonical encoding of a fabric's complete dynamic state."""
    encoder = _Encoder(fabric.config)
    ring_snaps = [fabric.rings[rid].snapshot(cycle)
                  for rid in sorted(fabric.rings)]
    bridge_snaps = [bridge.snapshot(cycle) for bridge in fabric.bridges]
    for snap in ring_snaps:
        encoder.collect(snap)
    for snap in bridge_snaps:
        encoder.collect(snap)
    return (
        tuple(encoder.ring(snap) for snap in ring_snaps),
        tuple(encoder.generic(snap) for snap in bridge_snaps),
    )


def in_flight(fabric: MultiRingFabric) -> int:
    """Occupancy shorthand the checker uses as its in-flight measure."""
    return fabric.occupancy()
