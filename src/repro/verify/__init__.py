"""Formal verification for the multi-ring fabric (``repro-noc verify``).

Three layers:

- :mod:`repro.verify.cdg` — static channel-dependency-graph deadlock
  analysis (Dally–Seitz cycles, benign/deadlock-capable classification);
- :mod:`repro.verify.model` — explicit-state bounded model checking of
  small fabrics (safety invariants + liveness via drain analysis);
- :mod:`repro.verify.replay` — counterexample replay on the real
  :class:`repro.sim.engine.Simulator` in both fast-path modes.

:mod:`repro.verify.report` ties them together for the CLI.
"""

from repro.verify.cdg import (
    CdgAnalysis,
    CdgCycle,
    analyze_cdg,
    build_cdg,
    interchiplet_deadlock_findings,
)
from repro.verify.model import ModelChecker, ModelCheckResult, Violation
from repro.verify.replay import (
    Counterexample,
    ReplayResult,
    replay_counterexample,
)
from repro.verify.report import (
    VerifyReport,
    model_check_feasible,
    run_verify,
    verify_pair_system,
)
from repro.verify.state import build_model_fabric, clone_fabric, encode_state

__all__ = [
    "CdgAnalysis",
    "CdgCycle",
    "Counterexample",
    "ModelCheckResult",
    "ModelChecker",
    "ReplayResult",
    "VerifyReport",
    "Violation",
    "analyze_cdg",
    "build_cdg",
    "build_model_fabric",
    "clone_fabric",
    "encode_state",
    "interchiplet_deadlock_findings",
    "model_check_feasible",
    "replay_counterexample",
    "run_verify",
    "verify_pair_system",
]
