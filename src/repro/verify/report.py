"""Orchestration and reporting for ``repro-noc verify``.

Runs the three verification layers over named systems:

1. CDG analysis (:mod:`repro.verify.cdg`) on every system — cheap and
   always on;
2. bounded model checking (:mod:`repro.verify.model`) on systems that
   pass :func:`model_check_feasible` — the built-in ``pair`` testbench
   by design, while the server/AI systems get a note instead of an
   intractable search;
3. counterexample replay (:mod:`repro.verify.replay`) of every model
   violation on the real simulator in both fast-path modes.

Exit-code convention matches ``repro-noc check``: 0 clean, 1 findings
(deadlock-capable cycle, model violation, or a replay that failed to
confirm), 2 usage errors.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.core.config import MultiRingConfig, TopologySpec
from repro.core.topology import chiplet_pair, grid_of_rings, tiny_pair
from repro.params import QueueParams
from repro.reporting import EXIT_FINDINGS, EXIT_OK
from repro.verify.cdg import CdgAnalysis, analyze_cdg, format_channel
from repro.verify.model import ModelChecker, ModelCheckResult
from repro.verify.replay import (
    Counterexample,
    ReplayResult,
    replay_counterexample,
)

#: Feasibility ceiling for exhaustive exploration: total ring stops.
_MAX_MODEL_STOPS = 12


def model_check_feasible(spec: TopologySpec) -> bool:
    """Small enough for explicit-state enumeration within CLI budgets."""
    return (len(spec.rings) <= 3
            and sum(r.nstops for r in spec.rings) <= _MAX_MODEL_STOPS
            and len(spec.nodes) <= 6
            and len(spec.bridges) <= 2)


def verify_pair_system(
    no_swap: bool = False,
) -> Tuple[TopologySpec, MultiRingConfig, List[Tuple[int, int]]]:
    """The model checker's testbench: the smallest pair that can wedge.

    Two 3-stop half rings, two nodes each, one RBRG-L2, every queue one
    deep.  Under cross-ring saturation this fabric starves without SWAP
    (the deflection bound breaks within ~65 cycles) and stays live with
    it — the Figure 9 experiment at model-checkable scale.
    """
    spec, ring0, ring1 = tiny_pair(nstops=3, nodes_per_ring=2)
    queues = QueueParams(
        inject_queue_depth=1, eject_queue_depth=1, bridge_rx_depth=1,
        bridge_tx_depth=1, bridge_reserved_tx=1, itag_threshold=4,
        swap_detect_threshold=8, swap_exit_threshold=1)
    config = MultiRingConfig(queues=queues, eject_drain_per_cycle=1,
                             enable_swap=not no_swap)
    pairs = ([(a, b) for a in ring0 for b in ring1]
             + [(b, a) for a in ring0 for b in ring1])
    return spec, config, pairs


def _system_specs(no_swap: bool) -> Dict[str, Tuple[TopologySpec,
                                                    MultiRingConfig,
                                                    Optional[List]]]:
    """Named built-in systems for the CLI (insertion order = run order)."""
    systems: Dict[str, Tuple] = {}
    spec, config, pairs = verify_pair_system(no_swap)
    systems["pair"] = (spec, config, pairs)
    cp_spec, _, _ = chiplet_pair()
    systems["chiplet-pair"] = (
        cp_spec, MultiRingConfig(enable_swap=not no_swap), None)
    return systems


def _heavy_system(name: str, no_swap: bool) -> Tuple[TopologySpec,
                                                     MultiRingConfig,
                                                     Optional[List]]:
    """The paper's full systems, loaded lazily (they pull big modules)."""
    if name == "server":
        from repro.cpu.package import build_server_system
        fabric, _, _ = build_server_system("multiring")
        return (fabric.topology,
                MultiRingConfig(enable_swap=not no_swap), None)
    if name == "ai":
        from repro.ai import AiProcessorConfig
        cfg = AiProcessorConfig()
        layout = grid_of_rings(cfg.n_vrings, cfg.n_hrings,
                               cfg.cores_per_vring, cfg.memory_per_hring)
        return (layout.topology,
                MultiRingConfig(enable_swap=not no_swap), None)
    raise KeyError(name)


def resolve_systems(names: List[str],
                    no_swap: bool) -> Dict[str, Tuple]:
    """Map CLI ``--system`` names to (spec, config, pairs) triples."""
    if "all" in names:
        names = ["pair", "chiplet-pair", "server", "ai"]
    elif not names:
        names = ["pair", "chiplet-pair"]
    systems: Dict[str, Tuple] = {}
    builtin = _system_specs(no_swap)
    for name in names:
        if name in builtin:
            systems[name] = builtin[name]
        else:
            systems[name] = _heavy_system(name, no_swap)
    return systems


class StageTimer:
    """Wall-clock timings for ``--profile`` (timing is reporting, not
    simulation, hence the determinism-lint opt-outs)."""

    def __init__(self, enabled: bool):
        self.enabled = enabled
        self.timings: Dict[str, float] = {}
        self._start = 0.0
        self._stage: Optional[str] = None

    def start(self, stage: str) -> None:
        if self.enabled:
            self._stage = stage
            self._start = time.perf_counter()  # repro: allow[determinism]

    def stop(self) -> None:
        if self.enabled and self._stage is not None:
            elapsed = time.perf_counter() - self._start  # repro: allow[determinism]
            self.timings[self._stage] = (
                self.timings.get(self._stage, 0.0) + elapsed)
            self._stage = None


@dataclass
class SystemVerification:
    """Everything ``verify`` learned about one system."""

    name: str
    cdg: CdgAnalysis
    model: Optional[ModelCheckResult] = None
    model_note: Optional[str] = None
    counterexamples: List[Counterexample] = field(default_factory=list)
    replays: List[ReplayResult] = field(default_factory=list)
    timings: Dict[str, float] = field(default_factory=dict)

    @property
    def finding_count(self) -> int:
        count = len(self.cdg.deadlock_capable)
        if self.model is not None:
            count += len(self.model.violations)
        count += sum(1 for r in self.replays if not r.confirmed)
        return count

    def to_dict(self) -> dict:
        out = {
            "name": self.name,
            "cdg": self.cdg.to_dict(),
            "model": self.model.to_dict() if self.model else None,
            "model_note": self.model_note,
            "counterexamples": [ce.to_dict()
                                for ce in self.counterexamples],
            "replays": [r.to_dict() for r in self.replays],
            "findings": self.finding_count,
        }
        if self.timings:
            out["timings"] = dict(self.timings)
        return out


@dataclass
class VerifyReport:
    systems: List[SystemVerification] = field(default_factory=list)

    @property
    def finding_count(self) -> int:
        return sum(s.finding_count for s in self.systems)

    def exit_code(self) -> int:
        # The shared check/verify/analyze convention (repro.reporting).
        return EXIT_FINDINGS if self.finding_count else EXIT_OK

    def to_dict(self) -> dict:
        return {
            "systems": [s.to_dict() for s in self.systems],
            "findings": self.finding_count,
        }

    def format(self) -> str:
        lines: List[str] = []
        for system in self.systems:
            lines.append(f"== {system.name} ==")
            cycles = system.cdg.cycles
            lines.append(
                f"  cdg: {len(system.cdg.channels)} channels, "
                f"{len(system.cdg.edges)} edges, "
                f"{len(cycles)} cyclic component(s)")
            for cyc in cycles:
                chain = " -> ".join(format_channel(ch)
                                    for ch in cyc.channels[:6])
                if len(cyc.channels) > 6:
                    chain += " -> ..."
                broken = (f" (broken by {', '.join(cyc.broken_by)})"
                          if cyc.broken_by else "")
                lines.append(f"    [{cyc.classification}] rings "
                             f"{list(cyc.rings)} bridges "
                             f"{list(cyc.bridges)}{broken}")
                lines.append(f"      {chain}")
            if system.model is not None:
                m = system.model
                status = ("exhaustive" if m.exhaustive
                          else "budget-bounded")
                lines.append(
                    f"  model: {m.states} states, {m.transitions} "
                    f"transitions, depth {m.max_depth} ({status}), "
                    f"{len(m.violations)} violation(s)")
                for v in m.violations:
                    lines.append(f"    [{v.kind}/{v.rule}] cycle "
                                 f"{v.cycle}: {v.message}")
            elif system.model_note:
                lines.append(f"  model: skipped ({system.model_note})")
            for replay in system.replays:
                mode = "fast" if replay.fast_path else "reference"
                verdict = ("confirmed" if replay.confirmed
                           else "NOT CONFIRMED")
                lines.append(
                    f"  replay[{mode}]: {verdict} "
                    f"({replay.observed_rule or 'no violation'}) "
                    f"{replay.detail}")
            for stage, secs in sorted(system.timings.items()):
                lines.append(f"  time[{stage}]: {secs:.3f}s")
        lines.append(f"verify: {self.finding_count} finding(s) across "
                     f"{len(self.systems)} system(s)")
        return "\n".join(lines)


def run_verify(
    system_names: Optional[List[str]] = None,
    *,
    no_swap: bool = False,
    model_check: bool = True,
    liveness: bool = True,
    replay: bool = True,
    max_states: int = 5000,
    max_in_flight: Optional[int] = None,
    max_violations: int = 1,
    profile: bool = False,
) -> VerifyReport:
    """Run the verification stack over the named built-in systems."""
    report = VerifyReport()
    for name, (spec, config, pairs) in resolve_systems(
            system_names or [], no_swap).items():
        timer = StageTimer(profile)

        timer.start("cdg")
        system = SystemVerification(name=name,
                                    cdg=analyze_cdg(spec, config))
        timer.stop()

        if not model_check:
            system.model_note = "disabled (--no-model-check)"
        elif config.reliability is not None:
            system.model_note = "reliable link layer out of model scope"
        elif not model_check_feasible(spec):
            system.model_note = (
                f"{sum(r.nstops for r in spec.rings)} stops across "
                f"{len(spec.rings)} rings exceeds the explicit-state "
                "budget; CDG analysis only")
        else:
            # A wedge needs enough in-flight flits to saturate both
            # directions; a healthy proof wants a tight bound so the
            # enumeration is exhaustive.
            bound = max_in_flight if max_in_flight is not None else (
                24 if no_swap else 2)
            checker = ModelChecker(
                spec, config, pairs,
                max_states=max_states,
                max_in_flight=bound,
                max_violations=max_violations,
                liveness=liveness and not no_swap,
            )
            timer.start("model")
            system.model = checker.run()
            timer.stop()
            for violation in system.model.violations:
                ce = Counterexample.from_violation(violation, spec, config)
                system.counterexamples.append(ce)
                if replay:
                    timer.start("replay")
                    system.replays.append(
                        replay_counterexample(ce, fast_path=True))
                    system.replays.append(
                        replay_counterexample(ce, fast_path=False))
                    timer.stop()
        system.timings = timer.timings
        report.systems.append(system)
    return report
