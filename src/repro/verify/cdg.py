"""Static channel-dependency-graph deadlock analysis (Section 4.4).

Dally and Seitz's classic result: a routing network is deadlock-free if
its channel dependency graph (CDG) is acyclic.  Bufferless rotating-slot
rings bend the rule — a deflected flit never *holds* a resource while it
waits, so purely intra-ring cycles cannot wedge — but the buffered
elements of this fabric (inject/eject queues, RBRG-L1 pipelines, RBRG-L2
Tx buffers and die-to-die links) reintroduce classic hold-and-wait.

The analyzer builds the CDG for any :class:`TopologySpec` +
:class:`MultiRingConfig` pair, finds its strongly connected components
(iterative Tarjan), and classifies every cyclic component:

- ``benign-bufferless`` — the only unbroken dependencies run through
  ring channels and RBRG-L1 pipelines; deflection keeps the cycle live
  (flits circle, they never block while holding a claim).
- ``benign-swap`` — the cycle crosses an RBRG-L2 but SWAP's reserved Tx
  breaks the Eject-Queue→Tx dependency: DRM can always vacate an eject
  slot (Section 4.4).
- ``benign-escape`` — escape slots break the bridge-inject→ring
  dependency instead.
- ``deadlock-capable`` — a cycle through RBRG-L2 Tx/link buffers
  survives with every configured breaking mechanism applied; the fabric
  can wedge under saturation.

:func:`interchiplet_deadlock_findings` wraps the analysis as the lint
rule ``swap-disabled-interchiplet-cycle``; the config validator
delegates here so the analyzer is the single source of truth for the
rule (id and baseline message preserved).

Channel naming — every channel is a flat tuple:

- ``("ring", ring_id)`` — the rotating slots of one ring (all lanes);
- ``("inject", ring, stop, port_key)`` / ``("eject", ...)`` — one
  station port's Inject/Eject Queue, where ``port_key`` is
  ``("node", id)`` or ``("bridge", id, side)`` exactly as in
  :class:`repro.core.network.MultiRingFabric`;
- ``("l1pipe", bridge_id, side)`` — an RBRG-L1 pipeline, in the
  direction *leaving* endpoint ``side``;
- ``("tx", bridge_id, side)`` / ``("link", bridge_id, side)`` — an
  RBRG-L2 Tx buffer / die-to-die link pipe, same direction convention.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.core.config import MultiRingConfig, TopologySpec
from repro.lint.findings import Finding, Severity

#: The lint rule id this module owns (kept from the legacy validator).
RULE = "swap-disabled-interchiplet-cycle"

#: The legacy validator's message, verbatim — tests and downstream
#: tooling match on it, so the analyzer appends detail rather than
#: rewording.
LEGACY_MESSAGE = (
    "topology has RBRG-L2 bridge(s) forming inter-chiplet "
    "ring cycles, but SWAP is disabled and no escape slots "
    "are configured; statically deadlock-prone under "
    "saturation (Section 4.4)")


@dataclass(frozen=True)
class Edge:
    """One dependency: a flit holding ``src`` waits for space in ``dst``.

    ``breaker`` names the mechanism that removes the dependency when
    configured (``"swap"`` for the reserved-Tx escape, ``"escape"`` for
    escape slots); ``None`` marks an unconditional dependency.
    """

    src: Tuple
    dst: Tuple
    breaker: Optional[str] = None


@dataclass(frozen=True)
class CdgCycle:
    """One cyclic strongly connected component of the CDG.

    ``channels``/``edges`` are a representative cycle (the shortest one
    through the component's *hard* — unbroken — edges when any survive,
    else through the full component); ``rings``/``bridges`` cover the
    whole component; ``broken_by`` lists the mechanisms that break the
    component's cycles (empty for deadlock-capable ones).
    """

    classification: str
    channels: Tuple[Tuple, ...]
    edges: Tuple[Edge, ...]
    rings: Tuple[int, ...]
    bridges: Tuple[int, ...]
    broken_by: Tuple[str, ...] = ()

    @property
    def is_deadlock_capable(self) -> bool:
        return self.classification == "deadlock-capable"


@dataclass
class CdgAnalysis:
    """Result of :func:`analyze_cdg`."""

    channels: Tuple[Tuple, ...]
    edges: Tuple[Edge, ...]
    cycles: List[CdgCycle] = field(default_factory=list)

    @property
    def deadlock_capable(self) -> List[CdgCycle]:
        return [c for c in self.cycles if c.is_deadlock_capable]

    def to_dict(self) -> dict:
        return {
            "channels": len(self.channels),
            "edges": len(self.edges),
            "cycles": [
                {
                    "classification": c.classification,
                    "rings": list(c.rings),
                    "bridges": list(c.bridges),
                    "broken_by": list(c.broken_by),
                    "cycle": [format_channel(ch) for ch in c.channels],
                }
                for c in self.cycles
            ],
        }


def _fmt_port(key: Tuple) -> str:
    if key[0] == "node":
        return f"node{key[1]}"
    return f"bridge{key[1]}.{'ab'[key[2]]}"


def format_channel(channel: Tuple) -> str:
    """Human-readable channel name for findings and reports."""
    kind = channel[0]
    if kind == "ring":
        return f"ring{channel[1]}"
    if kind in ("inject", "eject"):
        _, ring, stop, key = channel
        return f"{kind}[{_fmt_port(key)}@r{ring}s{stop}]"
    # l1pipe / tx / link: (kind, bridge_id, side).
    _, bid, side = channel
    direction = "a->b" if side == 0 else "b->a"
    return f"{kind}[bridge{bid} {direction}]"


def _swap_effective(config: MultiRingConfig) -> bool:
    """SWAP can actually fire: enabled, a reserved Tx slot exists, and a
    finite detection threshold lets DRM trigger."""
    queues = config.queues
    return (config.enable_swap
            and queues.bridge_reserved_tx >= 1
            and queues.swap_detect_threshold >= 1)


def build_cdg(
    spec: TopologySpec, config: MultiRingConfig
) -> Tuple[Set[Tuple], List[Edge]]:
    """Construct the channel set and dependency edges for a topology.

    Does not validate ``spec``; callers analysing possibly-broken specs
    should validate first (the lint wrapper falls back to a boolean
    check when the spec cannot even be built).
    """
    channels: Set[Tuple] = set()
    edges: List[Edge] = []

    for ring in spec.rings:
        channels.add(("ring", ring.ring_id))

    # Station ports, keyed exactly as MultiRingFabric builds them.
    ports: List[Tuple[Tuple, int, int]] = [
        (("node", p.node), p.ring, p.stop) for p in spec.nodes
    ]
    for b in spec.bridges:
        ports.append((("bridge", b.bridge_id, 0), b.ring_a, b.stop_a))
        ports.append((("bridge", b.bridge_id, 1), b.ring_b, b.stop_b))

    for key, ring, stop in ports:
        inj = ("inject", ring, stop, key)
        ej = ("eject", ring, stop, key)
        channels.update((inj, ej))
        # A queued flit waits for a free slot.  Escape slots admit only
        # bridge ports (Ring.step skips them for node ports), so only
        # bridge-inject edges are breakable.
        is_bridge = key[0] == "bridge"
        edges.append(Edge(inj, ("ring", ring),
                          breaker="escape" if is_bridge else None))
        # A circling flit waits for space in its exit port's Eject
        # Queue.  Node eject queues are sinks (eject_drain_per_cycle
        # always drains them), so they get no outgoing edges.
        edges.append(Edge(("ring", ring), ej))

    for b in spec.bridges:
        ends = ((b.ring_a, b.stop_a), (b.ring_b, b.stop_b))
        for side in (0, 1):
            src_ring, src_stop = ends[side]
            dst_ring, dst_stop = ends[1 - side]
            ej = ("eject", src_ring, src_stop, ("bridge", b.bridge_id, side))
            inj = ("inject", dst_ring, dst_stop,
                   ("bridge", b.bridge_id, 1 - side))
            if b.level == 1:
                pipe = ("l1pipe", b.bridge_id, side)
                channels.add(pipe)
                edges.append(Edge(ej, pipe))
                edges.append(Edge(pipe, inj))
            else:
                tx = ("tx", b.bridge_id, side)
                link = ("link", b.bridge_id, side)
                channels.update((tx, link))
                # DRM pushes Eject-Queue flits into the reserved Tx, so
                # SWAP breaks exactly this dependency (Section 4.4).
                edges.append(Edge(ej, tx, breaker="swap"))
                edges.append(Edge(tx, link))
                edges.append(Edge(link, inj))
    return channels, edges


def _tarjan(nodes: Set[Tuple],
            succ: Dict[Tuple, List[Tuple]]) -> List[List[Tuple]]:
    """Iterative Tarjan SCC (deterministic order, no recursion limit)."""
    index: Dict[Tuple, int] = {}
    low: Dict[Tuple, int] = {}
    stack: List[Tuple] = []
    on_stack: Set[Tuple] = set()
    sccs: List[List[Tuple]] = []
    counter = 0

    for root in sorted(nodes):
        if root in index:
            continue
        index[root] = low[root] = counter
        counter += 1
        stack.append(root)
        on_stack.add(root)
        work = [(root, iter(succ.get(root, ())))]
        while work:
            node, children = work[-1]
            advanced = False
            for child in children:
                if child not in index:
                    index[child] = low[child] = counter
                    counter += 1
                    stack.append(child)
                    on_stack.add(child)
                    work.append((child, iter(succ.get(child, ()))))
                    advanced = True
                    break
                if child in on_stack:
                    low[node] = min(low[node], index[child])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                low[parent] = min(low[parent], low[node])
            if low[node] == index[node]:
                comp = []
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    comp.append(member)
                    if member == node:
                        break
                sccs.append(comp)
    return sccs


def _find_cycle(nodes: Set[Tuple],
                edges: Sequence[Edge]) -> Optional[Tuple[Edge, ...]]:
    """Shortest cycle through ``edges`` (BFS from each node, in order)."""
    succ: Dict[Tuple, List[Edge]] = {}
    for edge in edges:
        succ.setdefault(edge.src, []).append(edge)
    best: Optional[Tuple[Edge, ...]] = None
    for start in sorted(nodes):
        parent: Dict[Tuple, Edge] = {}
        queue = deque([start])
        seen = {start}
        closing: Optional[Edge] = None
        while queue and closing is None:
            cur = queue.popleft()
            for edge in succ.get(cur, ()):
                if edge.dst == start:
                    closing = edge
                    break
                if edge.dst in seen or edge.dst not in nodes:
                    continue
                seen.add(edge.dst)
                parent[edge.dst] = edge
                queue.append(edge.dst)
        if closing is None:
            continue
        path = [closing]
        cur = closing.src
        while cur != start:
            step = parent[cur]
            path.append(step)
            cur = step.src
        path.reverse()
        if best is None or len(path) < len(best):
            best = tuple(path)
    return best


def _component_extent(comp: Sequence[Tuple]) -> Tuple[Tuple[int, ...],
                                                      Tuple[int, ...]]:
    """Ring ids and bridge ids a component touches."""
    rings: Set[int] = set()
    bridges: Set[int] = set()
    for channel in comp:
        kind = channel[0]
        if kind == "ring":
            rings.add(channel[1])
        elif kind in ("inject", "eject"):
            rings.add(channel[1])
            key = channel[3]
            if key[0] == "bridge":
                bridges.add(key[1])
        else:  # l1pipe / tx / link
            bridges.add(channel[1])
    return tuple(sorted(rings)), tuple(sorted(bridges))


def analyze_cdg(spec: TopologySpec, config: MultiRingConfig) -> CdgAnalysis:
    """Build the CDG and classify every cyclic component."""
    channels, edges = build_cdg(spec, config)
    escape_ok = config.escape_slot_period > 0
    swap_ok = _swap_effective(config)

    def broken(edge: Edge) -> bool:
        if edge.breaker == "swap":
            return swap_ok
        if edge.breaker == "escape":
            return escape_ok
        return False

    succ: Dict[Tuple, List[Tuple]] = {}
    for edge in edges:
        succ.setdefault(edge.src, []).append(edge.dst)
    for dsts in succ.values():
        dsts.sort()

    analysis = CdgAnalysis(channels=tuple(sorted(channels)),
                           edges=tuple(edges))
    for comp in _tarjan(channels, succ):
        if len(comp) < 2:
            continue
        comp_set = set(comp)
        comp_edges = [e for e in edges
                      if e.src in comp_set and e.dst in comp_set]
        hard_edges = [e for e in comp_edges if not broken(e)]
        broken_by = tuple(sorted({e.breaker for e in comp_edges
                                  if broken(e) and e.breaker}))
        rings, bridges = _component_extent(comp)

        hard_cycle = _find_cycle(comp_set, hard_edges)
        if hard_cycle is not None:
            buffered = any(e.src[0] in ("tx", "link") for e in hard_cycle)
            classification = ("deadlock-capable" if buffered
                              else "benign-bufferless")
            representative = hard_cycle
        else:
            classification = ("benign-swap" if "swap" in broken_by
                              else "benign-escape")
            representative = _find_cycle(comp_set, comp_edges) or ()
        analysis.cycles.append(CdgCycle(
            classification=classification,
            channels=tuple(e.src for e in representative),
            edges=tuple(representative),
            rings=rings,
            bridges=bridges,
            broken_by=broken_by,
        ))
    return analysis


def _cycle_detail(cycle: CdgCycle) -> str:
    chain = " -> ".join(format_channel(ch) for ch in cycle.channels)
    return f" [cycle: {chain} -> {format_channel(cycle.channels[0])}]"


def interchiplet_deadlock_findings(
    config: MultiRingConfig,
    spec: Optional[TopologySpec] = None,
    has_l2_bridges: bool = False,
    path: Optional[str] = None,
) -> List[Finding]:
    """The ``swap-disabled-interchiplet-cycle`` rule, CDG-backed.

    With a (structurally valid) ``spec``, every deadlock-capable cycle
    the analyzer finds becomes one finding naming the exact ring/bridge
    channels.  Without a spec — a scenario too broken to deserialize —
    falls back to the legacy boolean check on ``has_l2_bridges``.
    """
    findings: List[Finding] = []
    if spec is None:
        if (has_l2_bridges and not config.enable_swap
                and config.escape_slot_period == 0):
            findings.append(Finding(rule=RULE, message=LEGACY_MESSAGE,
                                    severity=Severity.ERROR, path=path))
        return findings

    for cycle in analyze_cdg(spec, config).deadlock_capable:
        if not config.enable_swap:
            message = LEGACY_MESSAGE + _cycle_detail(cycle)
        else:
            queues = config.queues
            message = (
                "topology has RBRG-L2 bridge(s) forming inter-chiplet "
                "ring cycles, and SWAP is enabled but can never fire "
                f"(swap_detect_threshold={queues.swap_detect_threshold}, "
                f"bridge_reserved_tx={queues.bridge_reserved_tx}); "
                "statically deadlock-prone under saturation "
                "(Section 4.4)" + _cycle_detail(cycle))
        findings.append(Finding(rule=RULE, message=message,
                                severity=Severity.ERROR, path=path))
    return findings
