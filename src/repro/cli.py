"""Command-line interface: quick experiments without writing a script.

Run ``python -m repro --help`` (or ``repro-noc --help`` once installed)
for the command list.  Each subcommand is a compact version of one of
the library's experiments; the full benchmark harness lives under
``benchmarks/``.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro import __version__
from repro.analysis.plot import line_chart, sparkline
from repro.sim.rng import make_rng

#: Exit code for a sweep that exceeded ``--max-failures``: distinct
#: from 1 (gate/finding failures) so CI can tell "the experiment says
#: no" from "the experiment infrastructure fell over".
EXIT_MAX_FAILURES = 3


def _fmt_or_na(value, fmt: str = "{:.1f}") -> str:
    """Format a metric, or ``n/a`` when the run produced none.

    Every summary metric in this CLI is None on a zero-delivery run
    (``--messages 0``, a fully wedged fabric, ...); those runs must
    still exit cleanly rather than crash formatting None.
    """
    if value is None:
        return "n/a"
    return fmt.format(value)


def _cmd_info(args: argparse.Namespace) -> int:
    print(f"repro {__version__} — bufferless multi-ring NoC for "
          "heterogeneous chiplets (HPCA 2022 reproduction)")
    print("layers: sim, fabric, core, baselines, coherence, cpu, ai, "
          "phys, workloads, analysis")
    print("docs: README.md, DESIGN.md, EXPERIMENTS.md")
    return 0


def _cmd_ring(args: argparse.Namespace) -> int:
    from repro.core import MultiRingFabric, single_ring_topology
    from repro.testing import inject_all, run_to_drain, uniform_messages

    topo, nodes = single_ring_topology(args.nodes,
                                       bidirectional=not args.half)
    fabric = MultiRingFabric(topo)
    checker = (fabric.attach_invariant_checker()
               if args.check_invariants else None)
    msgs = uniform_messages(nodes, nodes, args.messages, seed=args.seed)
    cycle = inject_all(fabric, msgs)
    run_to_drain(fabric, cycle)
    stats = fabric.stats
    kind = "half" if args.half else "full"
    print(f"{kind} ring, {args.nodes} stations: delivered "
          f"{stats.delivered}/{args.messages}, mean network latency "
          f"{_fmt_or_na(stats.mean_network_latency())} cycles, p99 network "
          f"{_fmt_or_na(stats.network_latency_percentile(99), '{:.0f}')}, "
          f"p99 total "
          f"{_fmt_or_na(stats.latency_percentile(99), '{:.0f}')}")
    if checker is not None:
        print(checker.summary())
    return 0


def _cmd_server(args: argparse.Namespace) -> int:
    from repro.cpu import ServerPackage, ServerPackageConfig, closed_loop
    from repro.cpu.core import sequential_stream

    config = ServerPackageConfig(clusters_per_ccd=6, hn_per_ccd=2,
                                 ddr_per_ccd=2)
    package = ServerPackage(config, fabric_kind=args.fabric)
    writer = package.attach_core(0, 0, sequential_stream("store", 0, 48),
                                 closed_loop(mlp=4))
    package.run_until_cores_done()
    reader_ccd = 1 if args.inter else 0
    reader = package.attach_core(reader_ccd, 1,
                                 sequential_stream("load", 0, 48),
                                 closed_loop(mlp=1))
    package.run_until_cores_done()
    package.system.check_coherence()
    scope = "inter" if args.inter else "intra"
    print(f"{args.fabric}: {scope}-chiplet M-state read latency "
          f"{_fmt_or_na(reader.stats.mean_latency())} cycles")
    return 0


def _cmd_ai(args: argparse.Namespace) -> int:
    from repro.ai import AiProcessor, AiProcessorConfig

    config = AiProcessorConfig(
        read_fraction=args.read_fraction,
        n_hrings=6, n_llc=12, n_l2=36, n_hbm=6, n_dma=6,
        core_mlp=48, dma_issues_per_cycle=0.4,
    )
    processor = AiProcessor(config, probe_window=max(args.cycles // 16, 64))
    checker = (processor.fabric.attach_invariant_checker()
               if args.check_invariants else None)
    processor.run(args.cycles)
    report = processor.bandwidth_report()
    print(f"AI fabric, R:W={args.read_fraction:.2f}, {args.cycles} cycles:")
    for key in ("total", "read", "write", "dma"):
        print(f"  {key:6s} {report[key]:6.2f} TB/s")
    processor.core_probes.finalize()
    ratios = processor.core_probes.min_over_max()
    if ratios:
        print(f"  equilibrium min/max per window: {sparkline(ratios)}")
    if checker is not None:
        print(checker.summary())
    return 0


def _cmd_deadlock(args: argparse.Namespace) -> int:
    from repro.core import MultiRingFabric, chiplet_pair
    from repro.core.config import MultiRingConfig
    from repro.fabric import Message, MessageKind
    from repro.params import QueueParams

    queues = QueueParams(inject_queue_depth=2, eject_queue_depth=2,
                         bridge_rx_depth=2, bridge_tx_depth=2,
                         bridge_reserved_tx=2, swap_detect_threshold=32)
    topo, ring0, ring1 = chiplet_pair(nodes_per_ring=4, stop_spacing=1)
    fabric = MultiRingFabric(topo, MultiRingConfig(
        queues=queues, enable_swap=not args.no_swap,
        eject_drain_per_cycle=1))
    checker = (fabric.attach_invariant_checker()
               if args.check_invariants else None)
    rng = make_rng(args.seed)
    deliveries = []
    for cycle in range(args.cycles):
        for src in ring0:
            fabric.try_inject(Message(src=src, dst=rng.choice(ring1),
                                      kind=MessageKind.DATA,
                                      created_cycle=cycle))
        for src in ring1:
            fabric.try_inject(Message(src=src, dst=rng.choice(ring0),
                                      kind=MessageKind.DATA,
                                      created_cycle=cycle))
        fabric.step(cycle)
        deliveries.append(fabric.stats.delivered)
    mode = "SWAP off" if args.no_swap else "SWAP on"
    print(f"{mode}: delivered {fabric.stats.delivered} under saturation, "
          f"DRM entries {fabric.stats.swap_events}")
    print("progress: " + sparkline(deliveries, width=60))
    if checker is not None:
        print(checker.summary())
    return 0


def _cmd_topology(args: argparse.Namespace) -> int:
    from repro.core.serialize import describe_topology, save_topology

    if args.system == "server":
        from repro.cpu.package import build_server_system
        fabric, _, _ = build_server_system("multiring")
        spec = fabric.topology
    elif args.system == "ai":
        from repro.ai import AiProcessorConfig
        from repro.core.topology import grid_of_rings
        cfg = AiProcessorConfig()
        spec = grid_of_rings(cfg.n_vrings, cfg.n_hrings,
                             cfg.cores_per_vring,
                             cfg.memory_per_hring).topology
    else:
        from repro.core import chiplet_pair
        spec, _, _ = chiplet_pair()
    print(describe_topology(spec))
    if args.save:
        with open(args.save, "w") as fh:
            save_topology(spec, fh)
        print(f"saved to {args.save}")
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    from repro.perf.cache import ResultCache
    from repro.perf.sweep import SweepPoint, is_failed, run_sweep
    from repro.perf.workers import ai_rw_point

    ratios = [1.0, 0.8, 2 / 3, 0.6, 0.5, 0.0]
    points = [SweepPoint.make(f"rw_{rf:.2f}", read_fraction=rf,
                              cycles=args.cycles)
              for rf in ratios]
    cache = ResultCache(args.cache) if args.cache else None
    results = run_sweep(ai_rw_point, points, base_seed=args.seed,
                        workers=args.workers, cache=cache,
                        cache_name="sweep-rw")
    totals, axis = [], []
    failed = 0
    for rf, record in zip(ratios, results):
        if is_failed(record):
            failed += 1
            print(f"  read fraction {rf:.2f}: FAILED "
                  f"({record['error_kind']} after {record['attempts']} "
                  "attempt(s))")
            continue
        totals.append(record["total_tbps"])
        axis.append(rf)
        print(f"  read fraction {rf:.2f}: total "
              f"{record['total_tbps']:5.2f} TB/s")
    if totals:
        print(line_chart({"total TB/s": totals}, xs=axis, height=8,
                         width=40,
                         title="total bandwidth vs read fraction"))
    if cache is not None:
        print(f"cache: {cache.hits} hit(s), {cache.misses} miss(es) "
              f"under {cache.root}")
    if failed:
        print(f"{failed} point(s) FAILED", file=sys.stderr)
        return EXIT_MAX_FAILURES
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    import os

    from repro.perf import bench

    cycles = args.cycles if args.cycles else bench.SMOKE_CYCLES
    report = bench.run_smoke_suite(repeats=args.repeats,
                                   reference=args.reference,
                                   cycles=cycles,
                                   engine=args.engine,
                                   journal=args.journal,
                                   resume=args.resume,
                                   force_serial=args.no_parallel)
    print(bench.format_report(report))
    if args.json:
        bench.write_report(report, args.json)
        print(f"wrote {args.json}")
    if report.get("failed_cases", 0) > args.max_failures:
        print(f"FAILED cases: {report['failed_cases']} exceed "
              f"--max-failures {args.max_failures}", file=sys.stderr)
        return EXIT_MAX_FAILURES
    if args.reference:
        # The saturated-case floor is calibrated against the committed
        # measurement budget; short --cycles overrides amortize the
        # dense tier's materialize cost too poorly to judge it.
        if cycles >= bench.SMOKE_CYCLES:
            gate_failures = bench.saturated_speedup_failures(report)
            if gate_failures:
                for failure in gate_failures:
                    print(f"SATURATED-CASE GATE: {failure}",
                          file=sys.stderr)
                return 1
        else:
            print(f"saturated-case gate skipped: cycles={cycles} below "
                  f"the committed budget ({bench.SMOKE_CYCLES})",
                  file=sys.stderr)
    if args.require_parallel_speedup:
        # The parallel floor is meaningless where the stepper cannot
        # run: single-CPU machines fall back serial by design, and
        # --no-parallel forces the serial path on purpose.
        if args.no_parallel:
            print("parallel-speedup gate skipped: --no-parallel forces "
                  "the serial path", file=sys.stderr)
        elif (os.cpu_count() or 1) < 2:
            print("parallel-speedup gate skipped: single-CPU machine "
                  "(the parallel stepper falls back serial)",
                  file=sys.stderr)
        else:
            gate_failures = bench.parallel_speedup_failures(
                report, args.parallel_floor)
            if gate_failures:
                for failure in gate_failures:
                    print(f"PARALLEL GATE: {failure}", file=sys.stderr)
                return 1
            print(f"parallel-speedup gate passed (floor "
                  f"{args.parallel_floor:.2f}x)")
    if args.baseline:
        baseline = bench.load_report(args.baseline)
        failures = bench.compare_to_baseline(report, baseline,
                                             args.max_regression)
        if failures:
            for failure in failures:
                print(f"REGRESSION: {failure}", file=sys.stderr)
            return 1
        print(f"no regression beyond {args.max_regression:.0%} vs "
              f"{args.baseline}")
    return 0


def _cmd_faults(args: argparse.Namespace) -> int:
    import json as _json

    from repro.faults.campaign import format_campaign, run_campaign
    from repro.perf.cache import ResultCache
    from repro.perf.resilient import RetryPolicy, SweepHealth, format_health
    from repro.perf.sweep import failed_points

    rates = [float(x) for x in args.rates.split(",") if x.strip()]
    retry_limits = [int(x) for x in args.retry_limits.split(",") if x.strip()]
    replay_depths = [int(x) for x in args.replay_depths.split(",")
                     if x.strip()]
    prefilter = None
    if args.prefilter:
        from repro.analyze.prefilter import campaign_prefilter
        prefilter = campaign_prefilter
    cache = ResultCache(args.cache) if args.cache else None
    retry = RetryPolicy(max_attempts=max(args.retries, 1))
    health = SweepHealth()
    results = run_campaign(rates=rates, retry_limits=retry_limits,
                           messages=args.messages, base_seed=args.seed,
                           workers=args.workers, cache=cache,
                           replay_depths=replay_depths,
                           prefilter=prefilter,
                           timeout=args.timeout, retry=retry,
                           health=health, journal=args.journal,
                           resume=args.resume)
    print(format_campaign(results))
    print(format_health(health))
    if prefilter is not None:
        from repro.perf.sweep import skipped_points
        skipped = skipped_points(results)
        print(f"prefilter: statically skipped {len(skipped)}/"
              f"{len(results)} point(s)")
    if args.json:
        with open(args.json, "w") as fh:
            _json.dump(results, fh, indent=2)
        print(f"wrote {args.json}")
    if args.health_json:
        with open(args.health_json, "w") as fh:
            _json.dump(health.as_dict(), fh, indent=2)
        print(f"wrote {args.health_json}")
    if cache is not None:
        print(f"cache: {cache.hits} hit(s), {cache.misses} miss(es) "
              f"under {cache.root}")
    failed = failed_points(results)
    if len(failed) > args.max_failures:
        for r in failed:
            print(f"FAILED {r['point']}: {r['error_kind']} after "
                  f"{r['attempts']} attempt(s): {r['error_message']}",
                  file=sys.stderr)
        print(f"{len(failed)} failed point(s) exceed --max-failures "
              f"{args.max_failures}", file=sys.stderr)
        return EXIT_MAX_FAILURES
    if args.require_zero_drops:
        bad = [r for r in results
               if not r.get("skipped") and not r.get("failed")
               and (r["dropped"] or r["wedged"])]
        if bad:
            for r in bad:
                print(f"FAIL {r['point']}: dropped {r['dropped']}, "
                      f"wedged {r['wedged']}", file=sys.stderr)
            return 1
        print("all points delivered every message (zero drops)")
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    import json as _json

    from repro.core import MultiRingFabric, chiplet_pair, single_ring_topology
    from repro.core.topology import tiny_pair
    from repro.fabric import Message
    from repro.obs import (
        MetricsRegistry,
        SnapshotSampler,
        format_hotspots,
        validate_event_stream,
        write_chrome_trace,
        write_jsonl,
    )
    from repro.sim.engine import FunctionComponent, Simulator

    if args.system == "ring":
        topo, nodes = single_ring_topology(12, bidirectional=True)
    elif args.system == "tiny":
        topo, ring0, ring1 = tiny_pair()
        nodes = list(ring0) + list(ring1)
    else:
        topo, ring0, ring1 = chiplet_pair()
        nodes = list(ring0) + list(ring1)
    fabric = MultiRingFabric(topo)
    recorder = fabric.attach_trace_recorder()
    registry = MetricsRegistry()
    sampler = SnapshotSampler(fabric, registry)

    rng = make_rng(args.seed)
    remaining = [args.messages]

    def pump(cycle: int) -> None:
        if not remaining[0]:
            return
        src = nodes[rng.randrange(len(nodes))]
        dst = nodes[rng.randrange(len(nodes))]
        if src == dst:
            return
        if fabric.try_inject(Message(src=src, dst=dst, created_cycle=cycle)):
            remaining[0] -= 1

    sim = Simulator()
    sim.register(FunctionComponent(pump, "pump"))
    sim.register(fabric)
    stats = fabric.stats
    drained = sim.run_until(
        lambda: remaining[0] == 0 and stats.in_flight == 0,
        max_cycles=args.max_cycles,
        check_every=args.sample_every,
        on_check=sampler,
    )

    events = recorder.sorted_events()
    registry.ingest(events, stats=stats)
    errors = validate_event_stream(events)

    state = "drained" if drained else "TIMED OUT"
    print(f"{args.system}: {state} after {sim.cycle} cycles, delivered "
          f"{stats.delivered}/{args.messages}, {len(events)} events, "
          f"{len(registry.snapshots)} snapshots")
    print(f"  mean network latency {_fmt_or_na(stats.mean_network_latency())}"
          f" cycles, p99 network "
          f"{_fmt_or_na(stats.network_latency_percentile(99), '{:.0f}')}, "
          f"p99 total "
          f"{_fmt_or_na(stats.latency_percentile(99), '{:.0f}')}")
    if recorder.dropped_events:
        print(f"  WARNING: {recorder.dropped_events} event(s) beyond "
              f"--limit were dropped")
    print(f"hotspots (top {args.top_hotspots}):")
    print(format_hotspots(registry, args.top_hotspots))

    if args.events:
        with open(args.events, "w") as fh:
            count = write_jsonl(events, fh)
        print(f"wrote {count} events to {args.events}")
    if args.chrome:
        with open(args.chrome, "w") as fh:
            count = write_chrome_trace(events, fh)
        print(f"wrote {count} Chrome trace events to {args.chrome}")
    if args.json:
        record = {
            "system": args.system,
            "cycles": sim.cycle,
            "drained": drained,
            "delivered": stats.delivered,
            "events": len(events),
            "latency": registry.latency_summary(),
            "ring_totals": {str(ring): totals for ring, totals
                            in sorted(registry.ring_totals().items())},
            "snapshots": registry.snapshots,
            "schema_errors": errors,
        }
        with open(args.json, "w") as fh:
            _json.dump(record, fh, indent=2)
            fh.write("\n")
        print(f"wrote metrics to {args.json}")

    if errors:
        for error in errors[:10]:
            print(f"SCHEMA: {error}", file=sys.stderr)
        return 1
    return 0


def _cmd_check(args: argparse.Namespace) -> int:
    import json as _json

    from repro.lint import run_check

    if args.write_baseline and not args.baseline:
        print("--write-baseline requires --baseline FILE", file=sys.stderr)
        return 2
    report = run_check(
        src_paths=args.src or None,
        scenario_paths=args.scenario,
        lint=not args.no_lint,
        builtin=not args.no_builtin,
        dataflow=not args.no_dataflow,
        baseline_path=args.baseline,
        write_baseline=args.write_baseline,
        fail_on=args.fail_on,
        use_cache=not args.no_cache,
        cache_path=args.cache_file,
    )
    if args.sarif:
        from repro.lint.sarif import write_sarif

        write_sarif(report.findings, args.sarif)
        print(f"wrote SARIF report to {args.sarif}", file=sys.stderr)
    if args.json:
        print(_json.dumps(report.to_dict(), indent=2))
    else:
        print(report.format())
    return report.exit_code


def _cmd_verify(args: argparse.Namespace) -> int:
    import json as _json

    from repro.verify import (
        Counterexample,
        replay_counterexample,
        run_verify,
    )

    if args.replay:
        ce = Counterexample.load(args.replay)
        code = 0
        for fast in (True, False):
            result = replay_counterexample(ce, fast_path=fast)
            if args.json:
                print(_json.dumps(result.to_dict(), indent=2))
            else:
                mode = "fast" if fast else "reference"
                verdict = "confirmed" if result.confirmed else "NOT CONFIRMED"
                print(f"replay[{mode}]: {verdict} "
                      f"({result.observed_rule or 'no violation'}) "
                      f"{result.detail}")
            if not result.confirmed:
                code = 1
        return code

    report = run_verify(
        args.system or None,
        no_swap=args.no_swap,
        model_check=not args.no_model_check,
        liveness=not args.no_liveness,
        replay=not args.no_replay,
        max_states=args.max_states,
        max_in_flight=args.max_in_flight,
        profile=args.profile,
    )
    if args.save_counterexample:
        saved = False
        for system in report.systems:
            if system.counterexamples:
                system.counterexamples[0].save(args.save_counterexample)
                saved = True
                break
        if not saved:
            print("no counterexample to save", file=sys.stderr)
    if args.json:
        print(_json.dumps(report.to_dict(), indent=2))
    else:
        print(report.format())
    return report.exit_code()


def _cmd_analyze(args: argparse.Namespace) -> int:
    import json as _json

    from repro.analyze import (
        AnalysisReport,
        BudgetSpec,
        WorkloadDescriptor,
        analyze_system,
        run_analyze,
        uniform_for_topology,
    )

    budget = None
    if args.budget:
        try:
            budget = BudgetSpec.load(args.budget)
        except (OSError, ValueError, _json.JSONDecodeError) as exc:
            print(f"cannot load budget {args.budget}: {exc}",
                  file=sys.stderr)
            return 2
    overrides = {
        "max_area_mm2": args.max_area_mm2,
        "max_power_w": args.max_power_w,
        "max_wire_mm": args.max_wire_mm,
        "max_energy_pj_per_flit": args.max_energy_pj_per_flit,
    }
    if any(v is not None for v in overrides.values()):
        budget = budget or BudgetSpec()
        for key in sorted(overrides):
            if overrides[key] is not None:
                setattr(budget, key, overrides[key])
    if budget is not None and args.wire_fabric:
        budget.wire_fabric = args.wire_fabric

    workload = None
    if args.workload:
        try:
            with open(args.workload, "r", encoding="utf-8") as fh:
                workload = WorkloadDescriptor.from_dict(_json.load(fh))
        except (OSError, KeyError, TypeError, ValueError) as exc:
            print(f"cannot load workload {args.workload}: {exc}",
                  file=sys.stderr)
            return 2

    report = AnalysisReport()
    if args.system or not args.scenario:
        base = run_analyze(
            args.system or None,
            no_swap=args.no_swap,
            injection_rate=args.injection_rate,
            workload=workload,
            budget=budget,
        )
        for system in base.systems:
            report.add_system(system)

    for path in args.scenario:
        from repro.core.serialize import topology_from_dict
        from repro.lint.validator import (
            _config_from_dict,
            validate_scenario_file,
        )

        findings = validate_scenario_file(path)
        if any(f.is_error for f in findings):
            # Structurally broken: report the validator findings instead
            # of crashing in deserialization.
            report.findings.extend(findings)
            continue
        with open(path, "r", encoding="utf-8") as fh:
            raw = _json.load(fh)
        topo_raw = raw.get("topology", raw)
        spec = topology_from_dict(topo_raw)
        config = _config_from_dict(raw.get("config", {}), path, findings)
        scenario_workload = workload
        if scenario_workload is None and args.injection_rate is not None:
            scenario_workload = uniform_for_topology(
                spec, args.injection_rate)
        report.add_system(analyze_system(
            path, spec, config,
            workload=scenario_workload, budget=budget))

    if args.json:
        print(_json.dumps(report.to_dict(), indent=2))
    else:
        print(report.format())
    return report.exit_code


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-noc",
        description="Bufferless multi-ring NoC reproduction (HPCA 2022)",
        epilog="exit codes: 0 success, 1 findings (check/verify/analyze) "
               "or a failed gate, 2 usage errors or an escaped invariant "
               "violation, 3 a sweep exceeded --max-failures, 130 "
               "interrupted (SIGINT/SIGTERM; journaled runs resume with "
               "--resume)",
    )
    parser.add_argument("--version", action="version",
                        version=f"repro {__version__}")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("info", help="library overview").set_defaults(fn=_cmd_info)

    p = sub.add_parser("check",
                       help="static analysis: lint sim paths, validate "
                            "topologies/configs")
    p.add_argument("--src", action="append", metavar="PATH",
                   help="source tree(s) to lint (default: the installed "
                        "repro package)")
    p.add_argument("--scenario", action="append", default=[],
                   metavar="FILE",
                   help="topology/scenario JSON file(s) to validate")
    p.add_argument("--no-lint", action="store_true",
                   help="skip the AST lint layer")
    p.add_argument("--no-builtin", action="store_true",
                   help="skip validating the built-in topologies")
    p.add_argument("--no-dataflow", action="store_true",
                   help="skip the interprocedural dataflow analysis")
    p.add_argument("--json", action="store_true",
                   help="machine-readable report")
    p.add_argument("--sarif", metavar="FILE",
                   help="also write findings as SARIF 2.1.0 (for GitHub "
                        "code scanning)")
    p.add_argument("--baseline", metavar="FILE",
                   help="subtract the findings baseline (fingerprint "
                        "match); stale entries report as notes")
    p.add_argument("--write-baseline", action="store_true",
                   help="regenerate the --baseline file from this run's "
                        "findings (explicit, reviewable diff)")
    p.add_argument("--fail-on", choices=["error", "warn", "info"],
                   default="error",
                   help="lowest severity that fails the run "
                        "(default: error)")
    p.add_argument("--no-cache", action="store_true",
                   help="bypass the per-file lint memo cache")
    p.add_argument("--cache-file", metavar="FILE",
                   help="memo cache location (default: "
                        "~/.cache/repro-noc/check-cache.json)")
    p.set_defaults(fn=_cmd_check)

    p = sub.add_parser(
        "verify",
        help="formal verification: channel-dependency deadlock analysis "
             "+ bounded model checking with counterexample replay")
    p.add_argument("--system", action="append",
                   choices=["pair", "chiplet-pair", "server", "ai", "all"],
                   help="system(s) to verify (repeatable; default: pair "
                        "and chiplet-pair)")
    p.add_argument("--no-swap", action="store_true",
                   help="verify with SWAP disabled (expected to produce "
                        "a deadlock counterexample on the pair testbench)")
    p.add_argument("--max-states", type=int, default=5000,
                   help="visited-state budget for the model checker")
    p.add_argument("--max-in-flight", type=int, default=None,
                   help="bound on in-flight flits during exploration "
                        "(default: 2 healthy, 24 with --no-swap)")
    p.add_argument("--no-model-check", action="store_true",
                   help="CDG analysis only; skip state enumeration")
    p.add_argument("--no-liveness", action="store_true",
                   help="skip the drain/DRM-exit liveness analysis")
    p.add_argument("--no-replay", action="store_true",
                   help="do not replay counterexamples on the simulator")
    p.add_argument("--save-counterexample", metavar="FILE",
                   help="write the first counterexample to FILE as JSON")
    p.add_argument("--replay", metavar="FILE",
                   help="replay a saved counterexample file in both "
                        "fast-path modes instead of verifying")
    p.add_argument("--json", action="store_true",
                   help="machine-readable report")
    p.add_argument("--profile", action="store_true",
                   help="report wall-clock time per verification stage")
    p.set_defaults(fn=_cmd_verify)

    p = sub.add_parser(
        "analyze",
        help="static fabric analysis: abstract bandwidth/latency "
             "bounds, occupancy estimates, physical budget checks, and "
             "deadlock classification — no simulation")
    p.add_argument("--system", action="append",
                   choices=["pair", "chiplet-pair", "server", "ai", "all"],
                   help="built-in system(s) to analyze (repeatable; "
                        "default: pair and chiplet-pair)")
    p.add_argument("--scenario", action="append", default=[],
                   metavar="FILE",
                   help="topology/scenario JSON file(s) to analyze "
                        "(validated first; structural errors become "
                        "findings)")
    p.add_argument("--no-swap", action="store_true",
                   help="analyze with SWAP disabled (flags the "
                        "inter-chiplet cycle as deadlock-capable)")
    p.add_argument("--injection-rate", type=float, default=None,
                   metavar="RATE",
                   help="uniform workload shorthand: every node injects "
                        "RATE flits/cycle to random destinations")
    p.add_argument("--workload", metavar="FILE",
                   help="per-flow workload descriptor JSON "
                        "({'flows': [{'src', 'dst', 'rate'}, ...]})")
    p.add_argument("--budget", metavar="FILE",
                   help="budget ceilings JSON (max_area_mm2, "
                        "max_power_w, max_wire_mm, "
                        "max_energy_pj_per_flit, wire_fabric)")
    p.add_argument("--max-area-mm2", type=float, default=None,
                   help="area ceiling override (mm^2)")
    p.add_argument("--max-power-w", type=float, default=None,
                   help="power ceiling override (W)")
    p.add_argument("--max-wire-mm", type=float, default=None,
                   help="total wire length ceiling override (mm)")
    p.add_argument("--max-energy-pj-per-flit", type=float, default=None,
                   help="worst-route energy ceiling override (pJ/flit)")
    p.add_argument("--wire-fabric", default=None,
                   choices=["high-density", "high-speed"],
                   help="Table 4 wire fabric for the physical model "
                        "(default: high-density)")
    p.add_argument("--json", action="store_true",
                   help="machine-readable report")
    p.set_defaults(fn=_cmd_analyze)

    p = sub.add_parser(
        "trace",
        help="flit-level event tracing: run random traffic with the "
             "observability layer on, print a hotspot table, and export "
             "JSONL / Chrome trace_event dumps")
    p.add_argument("--system", default="pair",
                   choices=["pair", "ring", "tiny"],
                   help="fabric to trace (default: the chiplet pair)")
    p.add_argument("--messages", type=int, default=200,
                   help="random messages to inject (one attempt/cycle)")
    p.add_argument("--max-cycles", type=int, default=20000,
                   help="give up (and report a timeout) after this many "
                        "cycles")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--sample-every", type=int, default=64,
                   help="snapshot cadence in cycles (rides the engine's "
                        "check_every)")
    p.add_argument("--top-hotspots", type=int, default=10,
                   help="stations in the hotspot table")
    p.add_argument("--events", metavar="FILE",
                   help="write the canonical JSONL event dump to FILE")
    p.add_argument("--chrome", metavar="FILE",
                   help="write a Chrome trace_event file to FILE "
                        "(chrome://tracing, Perfetto)")
    p.add_argument("--json", metavar="FILE",
                   help="write the metrics summary (latency histograms, "
                        "ring totals, snapshots) to FILE")
    p.set_defaults(fn=_cmd_trace)

    p = sub.add_parser("ring", help="drain random traffic on one ring")
    p.add_argument("--nodes", type=int, default=12)
    p.add_argument("--messages", type=int, default=200)
    p.add_argument("--half", action="store_true", help="half ring")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--check-invariants", action="store_true",
                   help="verify flit conservation, deflection bound, and "
                        "tag consistency every cycle")
    p.set_defaults(fn=_cmd_ring)

    p = sub.add_parser("server-latency",
                       help="Table 5-style coherent read latency")
    p.add_argument("--fabric", default="multiring",
                   choices=["multiring", "mesh", "single_ring",
                            "switched_star", "ideal"])
    p.add_argument("--inter", action="store_true",
                   help="reader on the other compute die")
    p.set_defaults(fn=_cmd_server)

    p = sub.add_parser("ai-bandwidth", help="Table 7-style AI bandwidth")
    p.add_argument("--cycles", type=int, default=1500)
    p.add_argument("--read-fraction", type=float, default=0.5)
    p.add_argument("--check-invariants", action="store_true",
                   help="verify fabric invariants every cycle")
    p.set_defaults(fn=_cmd_ai)

    p = sub.add_parser("deadlock", help="Figure 9 saturation testbench")
    p.add_argument("--cycles", type=int, default=3000)
    p.add_argument("--no-swap", action="store_true")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--check-invariants", action="store_true",
                   help="verify fabric invariants every cycle (detects "
                        "the SWAP-off livelock at runtime)")
    p.set_defaults(fn=_cmd_deadlock)

    p = sub.add_parser(
        "faults",
        help="fault-injection campaign: flit error rate × retry budget "
             "on the chiplet-pair die-to-die link")
    p.add_argument("--messages", type=int, default=200,
                   help="cross-chiplet messages per campaign point")
    p.add_argument("--rates", default="0,1e-4,1e-3",
                   help="comma-separated per-flit error rates")
    p.add_argument("--retry-limits", default="8",
                   help="comma-separated link retry budgets")
    p.add_argument("--replay-depths", default="0",
                   help="comma-separated replay buffer depths "
                        "(0 = auto-size to the link round trip)")
    p.add_argument("--prefilter", action="store_true",
                   help="skip statically-infeasible points (e.g. a "
                        "replay buffer smaller than the link round "
                        "trip) before dispatch, via repro.analyze")
    p.add_argument("--seed", type=int, default=0,
                   help="base seed; per-point seeds derive from it")
    p.add_argument("--workers", type=int, default=1,
                   help="worker processes (1 = in-process; results are "
                        "identical either way)")
    p.add_argument("--cache", metavar="DIR",
                   help="persist per-point results under DIR")
    p.add_argument("--json", metavar="FILE",
                   help="write the result records to FILE")
    p.add_argument("--require-zero-drops", action="store_true",
                   help="exit 1 if any point dropped a message or wedged "
                        "(CI gate)")
    p.add_argument("--timeout", type=float, default=None, metavar="SEC",
                   help="per-point wall-clock budget in seconds "
                        "(enforced with --workers > 1; a hung worker "
                        "is terminated and its pool recycled)")
    p.add_argument("--retries", type=int, default=3, metavar="N",
                   help="dispatch attempts per point before it becomes "
                        "a failure record (default 3; 1 disables retry)")
    p.add_argument("--journal", metavar="FILE",
                   help="append per-point outcomes to a crash-safe "
                        "JSONL journal as they complete")
    p.add_argument("--resume", action="store_true",
                   help="replay completed points from --journal instead "
                        "of recomputing them (failed points re-run); "
                        "results stay byte-identical per point")
    p.add_argument("--max-failures", type=int, default=0, metavar="N",
                   help=f"exit {EXIT_MAX_FAILURES} when more than N "
                        "points terminally fail (default 0: any failure "
                        "fails the campaign, loudly)")
    p.add_argument("--health-json", metavar="FILE",
                   help="write the sweep health counters (retries, "
                        "timeouts, pool restarts, quarantines) to FILE")
    p.set_defaults(fn=_cmd_faults)

    p = sub.add_parser("topology", help="describe a built-in topology")
    p.add_argument("system", choices=["server", "ai", "pair"])
    p.add_argument("--save", metavar="FILE", help="write JSON to FILE")
    p.set_defaults(fn=_cmd_topology)

    p = sub.add_parser("sweep-rw", help="R:W ratio bandwidth sweep")
    p.add_argument("--cycles", type=int, default=1200)
    p.add_argument("--seed", type=int, default=0,
                   help="base seed; per-point seeds derive from it")
    p.add_argument("--workers", type=int, default=1,
                   help="worker processes (1 = in-process; results are "
                        "identical either way)")
    p.add_argument("--cache", metavar="DIR",
                   help="persist per-point results under DIR and reuse "
                        "them on later runs")
    p.set_defaults(fn=_cmd_sweep)

    p = sub.add_parser(
        "bench",
        help="fabric stepping throughput: the smoke suite behind "
             "BENCH_fabric.json")
    p.add_argument("--smoke", action="store_true",
                   help="run the fixed smoke suite (the default and "
                        "currently only suite)")
    p.add_argument("--repeats", type=int, default=3,
                   help="timing repeats per case (best-of-N)")
    p.add_argument("--cycles", type=int,
                   default=None,
                   help="cycles per case (default: the committed-"
                        "trajectory value; override for quick local "
                        "runs only)")
    p.add_argument("--reference", action="store_true",
                   help="also time the reference step, verify the "
                        "engine under test matches its stats, and gate "
                        "saturated cases on speedup >= 1.0")
    p.add_argument("--engine", choices=["auto", "ref", "skip", "dense"],
                   default="auto",
                   help="stepping-engine mode to time (default: auto, "
                        "the shipping selector; use ref/skip/dense for "
                        "A/B runs)")
    p.add_argument("--json", metavar="FILE",
                   help="write the machine-readable report to FILE")
    p.add_argument("--baseline", metavar="FILE",
                   help="compare against a committed BENCH_fabric.json "
                        "and fail on regression")
    p.add_argument("--max-regression", type=float, default=0.25,
                   help="allowed fractional drop in normalized "
                        "throughput vs the baseline (default 0.25)")
    p.add_argument("--journal", metavar="FILE",
                   help="append per-case results to a crash-safe JSONL "
                        "journal as they complete")
    p.add_argument("--resume", action="store_true",
                   help="replay completed cases from --journal instead "
                        "of re-timing them (failed cases re-run)")
    p.add_argument("--max-failures", type=int, default=0, metavar="N",
                   help=f"exit {EXIT_MAX_FAILURES} when more than N "
                        "cases fail (default 0)")
    p.add_argument("--no-parallel", action="store_true",
                   help="force the serial path on cases that request "
                        "parallel stepping (the forced-serial A/B leg)")
    p.add_argument("--require-parallel-speedup", action="store_true",
                   help="fail unless every parallel case ran in "
                        "parallel and beat its serial A/B leg "
                        "(skipped on single-CPU machines and with "
                        "--no-parallel)")
    p.add_argument("--parallel-floor", type=float, default=1.0,
                   help="speedup-vs-serial floor for "
                        "--require-parallel-speedup (default 1.0)")
    p.set_defaults(fn=_cmd_bench)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    from repro.lint.invariants import InvariantViolation
    from repro.perf.journal import SweepJournalMismatch

    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.fn(args)
    except InvariantViolation as exc:
        print(f"invariant violation: {exc}", file=sys.stderr)
        return 2
    except SweepJournalMismatch as exc:
        print(f"cannot resume: {exc}", file=sys.stderr)
        return 2
    except KeyboardInterrupt:
        # SIGINT, or SIGTERM via the sweep dispatcher's graceful
        # mapping: completed points of a journaled run are already on
        # disk; rerun with --resume to pick up where this left off.
        print("interrupted — journaled sweeps resume with --resume",
              file=sys.stderr)
        return 130


if __name__ == "__main__":
    sys.exit(main())
