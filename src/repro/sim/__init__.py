"""Cycle-driven simulation kernel shared by every fabric and system model."""

from repro.sim.engine import Simulator, SimComponent
from repro.sim.rng import make_rng

__all__ = ["Simulator", "SimComponent", "make_rng"]
