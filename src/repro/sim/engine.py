"""Synchronous cycle-driven simulation engine.

Every hardware block in this reproduction is a :class:`SimComponent` with a
``step(cycle)`` method.  The :class:`Simulator` advances a global cycle
counter and steps components in registration order; registration order is
therefore part of a model's semantics (fabrics register their rings before
their bridges, systems register traffic sources before the fabric, and so
on).  This mirrors a single synchronous clock domain, which matches the
paper's NoC: one 3 GHz clock across the package, with die-to-die links
modeled as pipeline delay rather than as a clock-domain crossing.
"""

from __future__ import annotations

from typing import Callable, List, Optional


class SimComponent:
    """Base class for anything that does work once per clock cycle."""

    def step(self, cycle: int) -> None:
        """Advance this component by one cycle."""
        raise NotImplementedError


class Simulator:
    """Owns the clock and the ordered list of components.

    The simulator is deliberately minimal: no event queue, no delta cycles.
    A cycle-driven loop keeps ring-slot semantics exact (one hop per cycle)
    and keeps the whole reproduction deterministic for a given seed.
    """

    def __init__(self) -> None:
        self._components: List[SimComponent] = []
        self._invariants: List[Callable[[int], None]] = []
        self._cycle = 0

    @property
    def cycle(self) -> int:
        """Current cycle (number of completed steps)."""
        return self._cycle

    def register(self, component: SimComponent) -> None:
        """Append ``component`` to the per-cycle step order."""
        self._components.append(component)

    def register_first(self, component: SimComponent) -> None:
        """Prepend ``component`` so it steps before everything else."""
        self._components.insert(0, component)

    def register_invariant(self, check: Callable[[int], None]) -> None:
        """Add an invariant probe called after every component each cycle.

        Probes are opt-in (``--check-invariants``): they observe the
        post-step state and raise
        :class:`repro.lint.invariants.InvariantViolation` on failure, so
        a run stops at the first cycle where an invariant breaks rather
        than producing silently wrong statistics.
        """
        self._invariants.append(check)

    def step(self) -> None:
        """Advance the whole system by one cycle."""
        cycle = self._cycle
        for component in self._components:
            component.step(cycle)
        for check in self._invariants:
            check(cycle)
        self._cycle = cycle + 1

    def run(self, cycles: int) -> None:
        """Advance by ``cycles`` cycles.

        Fused loop: the component list is bound once (it is the live
        list, so components registered mid-run still step the same cycle,
        exactly as per-cycle :meth:`step` calls would) and the invariant
        sweep is skipped entirely when no probe is registered.
        """
        components = self._components
        invariants = self._invariants
        cycle = self._cycle
        end = cycle + cycles
        if invariants:
            while cycle < end:
                for component in components:
                    component.step(cycle)
                for check in invariants:
                    check(cycle)
                cycle += 1
                self._cycle = cycle
        else:
            while cycle < end:
                for component in components:
                    component.step(cycle)
                cycle += 1
                self._cycle = cycle

    def run_until(
        self,
        predicate: Callable[[], bool],
        max_cycles: int,
        check_every: int = 1,
        watchdog=None,
        on_check: Optional[Callable[[int], None]] = None,
    ) -> bool:
        """Run until ``predicate()`` is true or ``max_cycles`` elapse.

        Returns True if the predicate fired, False on timeout.

        Cadence, explicitly: the predicate is evaluated after every
        ``check_every``-th step — that is, after steps ``check_every``,
        ``2*check_every``, ... — and, if ``max_cycles`` is not a multiple
        of ``check_every``, once more after the final step so a timeout
        never misses a predicate that became true inside the last
        partial window.  The predicate is never evaluated twice for the
        same step and never before the first step.

        ``on_check(cycle)`` is called immediately before each predicate
        evaluation (same cadence, including the final partial window).
        This is the sampling hook the observability layer's
        :class:`repro.obs.metrics.SnapshotSampler` plugs into: periodic
        measurement rides the existing check cadence instead of adding a
        second bookkeeping interval.  A list/tuple of callables is also
        accepted and invoked in order, so several riders (a snapshot
        sampler, a :class:`repro.perf.dense.EngineSelector`) can share
        the one cadence.

        ``watchdog`` (a :class:`repro.faults.watchdog.ProgressWatchdog`)
        is observed after every step and turns a wedged system into a
        :class:`repro.faults.watchdog.NoProgressError` with a diagnostic
        dump instead of a silent timeout.
        """
        if check_every < 1:
            raise ValueError("check_every must be >= 1")
        if on_check is not None and not callable(on_check):
            hooks = list(on_check)

            def on_check(cycle, _hooks=hooks):
                for hook in _hooks:
                    hook(cycle)

        steps = 0
        for _ in range(max_cycles):
            self.step()
            steps += 1
            if watchdog is not None:
                watchdog.observe(self._cycle)
            if steps % check_every == 0:
                if on_check is not None:
                    on_check(self._cycle)
                if predicate():
                    return True
        if steps % check_every != 0:
            if on_check is not None:
                on_check(self._cycle)
            if predicate():
                return True
        return False


class FunctionComponent(SimComponent):
    """Adapter wrapping a plain callable as a component."""

    def __init__(self, fn: Callable[[int], None], name: Optional[str] = None):
        self._fn = fn
        self.name = name or getattr(fn, "__name__", "fn")

    def step(self, cycle: int) -> None:
        self._fn(cycle)
