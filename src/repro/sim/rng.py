"""Deterministic random-number helpers.

All stochastic behaviour in the reproduction (traffic arrival, address
selection, workload mixes) flows through generators created here so every
experiment is reproducible from a single integer seed.
"""

from __future__ import annotations

import random
from typing import Optional

#: The generator type handed around the library.  Sim modules must not
#: import :mod:`random` themselves (the ``determinism`` lint rule of
#: :mod:`repro.lint.rules` enforces this); they type-hint with ``Rng``
#: and create streams via :func:`make_rng`/:func:`split_rng`.
Rng = random.Random


def make_rng(seed: Optional[int]) -> random.Random:
    """Create an isolated ``random.Random`` from ``seed``.

    Passing ``None`` still returns a seeded generator (seed 0) so that
    nothing in the library is accidentally nondeterministic.
    """
    return random.Random(0 if seed is None else seed)


def split_rng(rng: random.Random, salt: int) -> random.Random:
    """Derive an independent child generator from ``rng`` and ``salt``.

    Used to give each traffic source its own stream so adding a source
    does not perturb the others' sequences.
    """
    return random.Random((rng.randrange(2**63) << 16) ^ salt)
