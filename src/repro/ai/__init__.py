"""AI-Processor system model (Section 4.3, Figure 8B).

The AI processor's NoC is a multi-ring mesh: AI cores ride the vertical
rings, the memory side (interleaved L2 slices, the LLC directory
front-end, HBM stacks, the system DMA) rides the horizontal rings, and
RBRG-L1s cross every intersection.  Any request changes ring at most
once (X-Y/Y-X routing).

Traffic follows Figure 8B's four paths: (1) AI core request to the LLC,
(2)+(3) data between L2 and the AI core, and (4) HBM refills into L2,
plus the system-DMA background that moves tensors between L2 and HBM.
"""

from repro.ai.messages import AiMessage, AiOp
from repro.ai.aicore import AiCore, AiCoreStats
from repro.ai.l2slice import L2Slice
from repro.ai.llc import LlcDirectory
from repro.ai.hbm import HbmStack
from repro.ai.dma import DmaEngine
from repro.ai.mesh_system import AiProcessor, AiProcessorConfig

__all__ = [
    "AiMessage",
    "AiOp",
    "AiCore",
    "AiCoreStats",
    "L2Slice",
    "LlcDirectory",
    "HbmStack",
    "DmaEngine",
    "AiProcessor",
    "AiProcessorConfig",
]
