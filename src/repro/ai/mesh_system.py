"""AI-Processor assembly: the multi-ring mesh of Figure 8(B).

AI cores ride the vertical rings; the memory population (interleaved L2
slices, LLC directory slices, HBM stacks, DMA engines) is interleaved
around the horizontal rings so that request traffic spreads evenly —
the equilibrium property of Figure 14.  Every vertical/horizontal pair
meets at one RBRG-L1, giving X-Y/Y-X routing with at most one ring
change.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.ai.aicore import AiCore
from repro.ai.dma import DmaEngine
from repro.ai.hbm import HbmStack
from repro.ai.l2slice import L2Slice
from repro.ai.llc import LlcDirectory
from repro.core.config import MultiRingConfig
from repro.core.network import MultiRingFabric
from repro.core.topology import grid_of_rings
from repro.fabric.probes import BandwidthProbe, ProbeSet
from repro.params import NOC_FREQ_HZ
from repro.sim.engine import SimComponent


@dataclass
class AiProcessorConfig:
    """Sizing of the AI processor (defaults follow Section 3.2.2)."""

    n_vrings: int = 8
    cores_per_vring: int = 4        # 32 AI cores
    n_hrings: int = 4
    n_l2: int = 24                  # interleaved data slices
    n_llc: int = 4                  # directory front-end slices
    n_hbm: int = 6                  # 500 GB/s stacks (Section 3.2.2)
    n_dma: int = 2
    stop_spacing: int = 2
    read_fraction: float = 0.5
    core_mlp: int = 24
    llc_hit_rate: float = 0.98
    dma_issues_per_cycle: float = 2.0   # per engine
    vring_bidirectional: bool = True
    hring_bidirectional: bool = True
    #: One NoC transaction moves this many bytes: AI traffic is burst
    #: oriented (tensor tiles), riding the x2.5-width high-speed fabric.
    burst_bytes: int = 256
    #: Parallel lanes per ring direction (wide-bus replication).
    lanes_per_direction: int = 2
    #: Lane override for the horizontal (memory) rings, which aggregate
    #: every traffic class; None inherits lanes_per_direction.
    hring_lanes: "int | None" = None
    #: Minimum cycles between issues at one core (models a narrower core
    #: port; 1 = issue every cycle).  Kept for ablations.
    core_issue_interval: int = 1

    @property
    def n_cores(self) -> int:
        return self.n_vrings * self.cores_per_vring

    @property
    def memory_per_hring(self) -> int:
        total = self.n_l2 + self.n_llc + self.n_hbm + self.n_dma
        return (total + self.n_hrings - 1) // self.n_hrings


class AiProcessor(SimComponent):
    """A runnable AI processor on the paper's multi-ring mesh."""

    def __init__(
        self,
        config: Optional[AiProcessorConfig] = None,
        ring_config: Optional[MultiRingConfig] = None,
        seed: int = 0,
        probe_window: int = 256,
    ):
        self.config = cfg = config or AiProcessorConfig()
        layout = grid_of_rings(
            cfg.n_vrings,
            cfg.n_hrings,
            devices_per_vring=cfg.cores_per_vring,
            memory_per_hring=cfg.memory_per_hring,
            stop_spacing=cfg.stop_spacing,
            vring_bidirectional=cfg.vring_bidirectional,
            hring_bidirectional=cfg.hring_bidirectional,
            vring_lanes=cfg.lanes_per_direction,
            hring_lanes=cfg.hring_lanes,
        )
        self.layout = layout
        if ring_config is None:
            ring_config = MultiRingConfig(lanes_per_direction=cfg.lanes_per_direction)
        self.fabric = MultiRingFabric(layout.topology, ring_config)

        # Interleave memory roles across horizontal rings so each ring
        # carries a balanced share of every role.
        roles = (["l2"] * cfg.n_l2 + ["llc"] * cfg.n_llc
                 + ["hbm"] * cfg.n_hbm + ["dma"] * cfg.n_dma)
        memory_nodes = []
        for j in range(max(len(g) for g in layout.hring_nodes)):
            for ring_nodes in layout.hring_nodes:
                if j < len(ring_nodes):
                    memory_nodes.append(ring_nodes[j])
        if len(memory_nodes) < len(roles):
            raise ValueError("not enough memory stops for the configured roles")

        l2_nodes: List[int] = []
        llc_nodes: List[int] = []
        hbm_nodes: List[int] = []
        dma_nodes: List[int] = []
        for node, role in zip(memory_nodes, roles):
            {"l2": l2_nodes, "llc": llc_nodes,
             "hbm": hbm_nodes, "dma": dma_nodes}[role].append(node)

        def l2_map(addr: int) -> int:
            return l2_nodes[addr % len(l2_nodes)]

        def llc_map(addr: int) -> int:
            return llc_nodes[addr % len(llc_nodes)]

        def hbm_map(addr: int) -> int:
            return hbm_nodes[addr % len(hbm_nodes)]

        self.l2_slices = [
            L2Slice(node, self.fabric, burst_bytes=cfg.burst_bytes,
                    llc_map=llc_map, name=f"L2[{i}]")
            for i, node in enumerate(l2_nodes)
        ]
        self.llcs = [
            LlcDirectory(node, self.fabric, l2_map, hbm_map,
                         hit_rate=cfg.llc_hit_rate, seed=seed + 101 + i,
                         name=f"LLC[{i}]")
            for i, node in enumerate(llc_nodes)
        ]
        self.hbms = [
            HbmStack(node, self.fabric, burst_bytes=cfg.burst_bytes,
                     name=f"HBM[{i}]")
            for i, node in enumerate(hbm_nodes)
        ]
        self.dmas = [
            DmaEngine(node, self.fabric, l2_nodes, hbm_nodes,
                      issues_per_cycle=cfg.dma_issues_per_cycle,
                      seed=seed + 301 + i, burst_bytes=cfg.burst_bytes,
                      name=f"DMA[{i}]")
            for i, node in enumerate(dma_nodes)
        ]
        self.cores = [
            AiCore(node, self.fabric, llc_map, l2_map,
                   read_fraction=cfg.read_fraction, mlp=cfg.core_mlp,
                   seed=seed + 501 + i, burst_bytes=cfg.burst_bytes,
                   issue_interval=cfg.core_issue_interval,
                   name=f"AIC[{i}]")
            for i, node in enumerate(layout.all_device_nodes)
        ]
        #: Figure 14 instrumentation: one probe per AI core station.
        self.core_probes = ProbeSet([
            self.fabric.add_delivery_probe(core.node_id, probe_window)
            for core in self.cores
        ])
        self._agents = (self.cores + self.l2_slices + self.llcs
                        + self.hbms + self.dmas)
        self._cycle = 0

    # -- clocking ----------------------------------------------------------

    def step(self, cycle: int) -> None:
        for agent in self._agents:
            agent.step(cycle)
        self.fabric.step(cycle)
        self._cycle = cycle + 1

    def run(self, cycles: int) -> int:
        for _ in range(cycles):
            self.step(self._cycle)
        return self._cycle

    # -- measurement ----------------------------------------------------------

    def bandwidth_report(self, elapsed_cycles: Optional[int] = None) -> Dict[str, float]:
        """Completion-based bandwidth by class, in TB/s at 3 GHz.

        Matches Table 7's columns: total, read (L2->core data), write
        (core->L2 data), and DMA (L2<->HBM background)."""
        cycles = elapsed_cycles if elapsed_cycles is not None else self._cycle
        if cycles <= 0:
            return {"total": 0.0, "read": 0.0, "write": 0.0, "dma": 0.0}
        read_bytes = sum(c.stats.read_bytes for c in self.cores)
        write_bytes = sum(c.stats.write_bytes for c in self.cores)
        dma_bytes = sum(d.bytes_moved for d in self.dmas)
        scale = NOC_FREQ_HZ / cycles / 1e12
        return {
            "read": read_bytes * scale,
            "write": write_bytes * scale,
            "dma": dma_bytes * scale,
            "total": (read_bytes + write_bytes + dma_bytes) * scale,
        }
