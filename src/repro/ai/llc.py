"""LLC directory front-end.

Section 4.3: "all data requests initiated by the AI Core are first
received and processed by LLC.  When the LLC gets a directory hit, data
can be transferred between L2 and the AI Core, while when the directory
miss, L2 requests data from HBM through LLC."  The directory itself is
modelled with a hit probability (workload-dependent reuse), because the
evaluation traffic classes are defined by their R:W mix, not by a
concrete tensor placement.
"""

from __future__ import annotations

from typing import Callable

from repro.ai.messages import AiMessage, AiOp
from repro.coherence.agent import ProtocolAgent
from repro.fabric.interface import Fabric
from repro.sim.rng import make_rng


class LlcDirectory(ProtocolAgent):
    """Directory slice deciding between L2 service and HBM refill."""

    def __init__(
        self,
        node_id: int,
        fabric: Fabric,
        l2_map: Callable[[int], int],
        hbm_map: Callable[[int], int],
        hit_rate: float = 1.0,
        lookup_latency: int = 3,
        seed: int = 0,
        name: str = "",
    ):
        super().__init__(node_id, fabric, name)
        self.l2_map = l2_map
        self.hbm_map = hbm_map
        self.hit_rate = hit_rate
        self.lookup_latency = lookup_latency
        self._rng = make_rng(seed)
        self.hits = 0
        self.misses = 0
        self.writes_tracked = 0

    def on_message(self, ai: AiMessage, src: int, cycle: int) -> None:
        if ai.op is AiOp.WRITE_NOTIFY:
            # Directory update for a write that landed in L2.
            self.writes_tracked += 1
            return
        if ai.op is not AiOp.READ_REQ:
            raise RuntimeError(f"{self.name}: unexpected {ai.op} from {src}")
        if self._rng.random() < self.hit_rate:
            self.hits += 1
            self.after(self.lookup_latency, lambda c, m=ai: self.send(
                self.l2_map(m.addr), AiMessage(
                    op=AiOp.READ_FWD, addr=m.addr, txn_id=m.txn_id,
                    requester=m.requester,
                )))
        else:
            # Miss: HBM refills the owning L2 slice, which then forwards
            # to the requester (paths 4 then 2).
            self.misses += 1
            self.after(self.lookup_latency, lambda c, m=ai: self.send(
                self.hbm_map(m.addr), AiMessage(
                    op=AiOp.FILL_REQ, addr=m.addr, txn_id=m.txn_id,
                    requester=m.requester, target=self.l2_map(m.addr),
                )))
