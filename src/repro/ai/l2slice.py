"""Interleaved distributed L2 slice.

Section 4.3: "the distributed L2 in the AI processor only provides data
storage"; the set-associative function lives in the LLC.  A slice serves
read forwards with data, absorbs writes, sources DMA transfers toward
HBM, and sinks HBM fills.  Service is SRAM-rate limited.
"""

from __future__ import annotations

from typing import Optional

from repro.ai.messages import AiMessage, AiOp
from repro.coherence.agent import ProtocolAgent
from repro.fabric.interface import Fabric


class L2Slice(ProtocolAgent):
    """One slice of the interleaved L2 data store."""

    def __init__(
        self,
        node_id: int,
        fabric: Fabric,
        access_latency: int = 4,
        serves_per_cycle: int = 2,
        burst_bytes: int = 64,
        llc_map=None,
        name: str = "",
    ):
        super().__init__(node_id, fabric, name)
        self.llc_map = llc_map
        self.access_latency = access_latency
        self.serves_per_cycle = serves_per_cycle
        self.burst_bytes = burst_bytes
        self._served_this_cycle = 0
        self._cycle_seen = -1
        self.reads_served = 0
        self.writes_absorbed = 0
        self.fills = 0
        self.dma_out = 0

    def _charge(self, cycle: int) -> int:
        """SRAM bank conflict model: extra wait when over-subscribed."""
        if cycle != self._cycle_seen:
            self._cycle_seen = cycle
            self._served_this_cycle = 0
        self._served_this_cycle += 1
        overload = max(0, self._served_this_cycle - self.serves_per_cycle)
        return self.access_latency + overload

    def on_message(self, ai: AiMessage, src: int, cycle: int) -> None:
        delay = self._charge(cycle)
        if ai.op is AiOp.READ_FWD:
            self.reads_served += 1
            self.after(delay, lambda c, m=ai: self.send(m.requester, AiMessage(
                op=AiOp.READ_DATA, addr=m.addr, txn_id=m.txn_id,
                requester=m.requester, data_bytes=self.burst_bytes,
            )))
        elif ai.op is AiOp.WRITE_DATA:
            self.writes_absorbed += 1
            self.after(delay, lambda c, m=ai: self.send(m.requester, AiMessage(
                op=AiOp.WRITE_ACK, addr=m.addr, txn_id=m.txn_id,
                requester=m.requester,
            )))
            if self.llc_map is not None:
                # Keep the LLC directory current (Section 4.3: the LLC
                # processes every data request).
                self.after(delay, lambda c, m=ai: self.send(
                    self.llc_map(m.addr), AiMessage(
                        op=AiOp.WRITE_NOTIFY, addr=m.addr, txn_id=m.txn_id,
                        requester=m.requester,
                    )))
        elif ai.op is AiOp.FILL_DATA:
            # HBM refill landed (Figure 8B path 4): forward to the core
            # that missed, if the fill carries an original requester.
            self.fills += 1
            if ai.requester != self.node_id:
                self.after(delay, lambda c, m=ai: self.send(
                    m.requester, AiMessage(
                        op=AiOp.READ_DATA, addr=m.addr, txn_id=m.txn_id,
                        requester=m.requester, data_bytes=self.burst_bytes,
                    )))
        elif ai.op is AiOp.DMA_REQ:
            # DMA pull: ship a line to the HBM target.
            self.dma_out += 1
            target = ai.target if ai.target is not None else src
            self.after(delay, lambda c, m=ai, t=target: self.send(t, AiMessage(
                op=AiOp.DMA_DATA, addr=m.addr, txn_id=m.txn_id,
                requester=m.requester, target=t,
                data_bytes=self.burst_bytes,
            )))
        elif ai.op is AiOp.DMA_DATA:
            # HBM -> L2 prefetch landed; acknowledge to the DMA engine.
            self.send(ai.requester, AiMessage(
                op=AiOp.DMA_ACK, addr=ai.addr, txn_id=ai.txn_id,
                requester=ai.requester,
            ))
        else:
            raise RuntimeError(f"{self.name}: unexpected {ai.op} from {src}")
