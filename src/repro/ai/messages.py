"""Message vocabulary of the AI processor's traffic (Figure 8B paths)."""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from enum import Enum
from typing import Optional

from repro.fabric.message import MessageKind


class AiOp(Enum):
    """Operations on the AI fabric.

    Read path (Figure 8B paths 1-3): READ_REQ core->LLC, READ_FWD
    LLC->L2, READ_DATA L2->core.  Miss path (path 4): FILL_REQ LLC->HBM,
    FILL_DATA HBM->L2 (then READ_DATA to the core).  Write path:
    WRITE_DATA core->L2, WRITE_ACK L2->core, plus WRITE_NOTIFY L2->LLC
    keeping the directory current (the LLC processes every data
    request).  DMA: DMA_REQ engine->L2 or ->HBM, DMA_DATA L2->HBM or
    HBM->L2.
    """

    READ_REQ = "ReadReq"
    READ_FWD = "ReadFwd"
    READ_DATA = "ReadData"
    FILL_REQ = "FillReq"
    FILL_DATA = "FillData"
    WRITE_DATA = "WriteData"
    WRITE_ACK = "WriteAck"
    WRITE_NOTIFY = "WriteNotify"
    DMA_REQ = "DmaReq"
    DMA_DATA = "DmaData"
    DMA_ACK = "DmaAck"

    @property
    def message_kind(self) -> MessageKind:
        if self in (AiOp.READ_DATA, AiOp.FILL_DATA, AiOp.WRITE_DATA,
                    AiOp.DMA_DATA):
            return MessageKind.DATA
        if self in (AiOp.WRITE_ACK, AiOp.DMA_ACK):
            return MessageKind.RESPONSE
        return MessageKind.REQUEST


_txn_ids = itertools.count(1)


def next_ai_txn() -> int:
    return next(_txn_ids)


@dataclass
class AiMessage:
    """Payload carried inside a fabric Message on the AI fabric."""

    op: AiOp
    addr: int
    txn_id: int
    requester: int
    #: For DMA: the final data destination (HBM node or L2 node).
    target: Optional[int] = None
    #: Burst size of DATA messages (AI traffic moves multi-line bursts).
    data_bytes: Optional[int] = None

    @property
    def transport_kind(self) -> MessageKind:
        return self.op.message_kind
