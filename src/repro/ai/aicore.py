"""AI-core traffic model.

Section 3.2.2: the AI core's cube/vector/scalar units stream tensors
through the shared L2 with high arithmetic intensity, sequential
addresses, and high memory-level parallelism.  The traffic model issues
reads and writes at a configurable R:W ratio with a deep outstanding
window — the Table 7 workload classes ("we build several traffic-flows
with different read/write ratios").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.ai.messages import AiMessage, AiOp, next_ai_txn
from repro.coherence.agent import ProtocolAgent
from repro.fabric.interface import Fabric
from repro.params import CACHE_LINE_BYTES
from repro.sim.rng import make_rng


@dataclass
class AiCoreStats:
    reads_issued: int = 0
    writes_issued: int = 0
    reads_done: int = 0
    writes_done: int = 0
    read_bytes: float = 0.0
    write_bytes: float = 0.0
    read_latencies: List[int] = field(default_factory=list)
    keep_latencies: bool = False

    @property
    def total_bytes(self) -> float:
        return self.read_bytes + self.write_bytes


class AiCore(ProtocolAgent):
    """One AI core: issues reads via the LLC and writes to interleaved L2."""

    def __init__(
        self,
        node_id: int,
        fabric: Fabric,
        llc_map: Callable[[int], int],
        l2_map: Callable[[int], int],
        read_fraction: float = 0.5,
        mlp: int = 24,
        seed: int = 0,
        addr_space: int = 1 << 20,
        burst_bytes: int = CACHE_LINE_BYTES,
        issue_interval: int = 1,
        name: str = "",
    ):
        super().__init__(node_id, fabric, name)
        self.llc_map = llc_map
        self.l2_map = l2_map
        self.read_fraction = read_fraction
        self.mlp = mlp
        self.burst_bytes = burst_bytes
        self.issue_interval = max(1, issue_interval)
        self._next_issue = 0
        self.stats = AiCoreStats()
        self._rng = make_rng(seed)
        self._outstanding: Dict[int, int] = {}  # txn -> issue cycle
        self._next_addr = self._rng.randrange(addr_space)
        self._addr_space = addr_space
        self.enabled = True

    @property
    def outstanding(self) -> int:
        return len(self._outstanding)

    def _sequential_addr(self) -> int:
        # Streaming tensor access: sequential lines, occasional new tensor.
        self._next_addr = (self._next_addr + 1) % self._addr_space
        if self._rng.random() < 0.01:
            self._next_addr = self._rng.randrange(self._addr_space)
        return self._next_addr

    def step(self, cycle: int) -> None:
        super().step(cycle)
        if not self.enabled:
            return
        while len(self._outstanding) < self.mlp:
            if cycle < self._next_issue:
                break  # port busy streaming the previous burst's beats
            self._next_issue = cycle + self.issue_interval
            addr = self._sequential_addr()
            txn = next_ai_txn()
            if self.read_fraction >= 1.0 or (
                self.read_fraction > 0.0
                and self._rng.random() < self.read_fraction
            ):
                self.send(self.llc_map(addr), AiMessage(
                    op=AiOp.READ_REQ, addr=addr, txn_id=txn,
                    requester=self.node_id,
                ))
                self.stats.reads_issued += 1
            else:
                self.send(self.l2_map(addr), AiMessage(
                    op=AiOp.WRITE_DATA, addr=addr, txn_id=txn,
                    requester=self.node_id, data_bytes=self.burst_bytes,
                ))
                self.stats.writes_issued += 1
            self._outstanding[txn] = cycle
            if len(self._outbox) > self.mlp:
                break  # fabric is refusing; stop piling into the retry buffer

    def on_message(self, ai: AiMessage, src: int, cycle: int) -> None:
        issued = self._outstanding.pop(ai.txn_id, None)
        if issued is None:
            return
        if ai.op is AiOp.READ_DATA:
            self.stats.reads_done += 1
            self.stats.read_bytes += ai.data_bytes or self.burst_bytes
            if self.stats.keep_latencies:
                self.stats.read_latencies.append(cycle - issued)
        elif ai.op is AiOp.WRITE_ACK:
            self.stats.writes_done += 1
            self.stats.write_bytes += self.burst_bytes
        else:
            raise RuntimeError(f"{self.name}: unexpected {ai.op}")
