"""HBM stack model: 500 GB/s per stack (Section 3.2.2), six per chip."""

from __future__ import annotations

from repro.ai.messages import AiMessage, AiOp
from repro.coherence.agent import ProtocolAgent
from repro.fabric.interface import Fabric
from repro.params import BANDWIDTH, CACHE_LINE_BYTES, LATENCY


class HbmStack(ProtocolAgent):
    """Bandwidth-limited HBM endpoint on a horizontal ring."""

    def __init__(
        self,
        node_id: int,
        fabric: Fabric,
        bytes_per_cycle: float = BANDWIDTH.hbm_stack_bytes_per_cycle,
        service_latency: int = LATENCY.hbm_service,
        burst_bytes: int = CACHE_LINE_BYTES,
        name: str = "",
    ):
        super().__init__(node_id, fabric, name)
        self.burst_bytes = burst_bytes
        self.service_interval = burst_bytes / bytes_per_cycle
        self.service_latency = service_latency
        self._next_free = 0.0
        self.reads = 0
        self.writes = 0

    def _queue_delay(self, cycle: int) -> int:
        start = max(float(cycle), self._next_free)
        self._next_free = start + self.service_interval
        return int(start - cycle) + self.service_latency

    def on_message(self, ai: AiMessage, src: int, cycle: int) -> None:
        if ai.op is AiOp.FILL_REQ:
            # Refill the owning L2 slice (Figure 8B path 4).
            self.reads += 1
            delay = self._queue_delay(cycle)
            self.after(delay, lambda c, m=ai: self.send(
                m.target, AiMessage(
                    op=AiOp.FILL_DATA, addr=m.addr, txn_id=m.txn_id,
                    requester=m.requester, data_bytes=self.burst_bytes,
                )))
        elif ai.op is AiOp.DMA_REQ:
            # DMA pull from HBM toward an L2 slice.
            self.reads += 1
            delay = self._queue_delay(cycle)
            self.after(delay, lambda c, m=ai: self.send(
                m.target, AiMessage(
                    op=AiOp.DMA_DATA, addr=m.addr, txn_id=m.txn_id,
                    requester=m.requester, target=m.target,
                    data_bytes=self.burst_bytes,
                )))
        elif ai.op is AiOp.DMA_DATA:
            # L2 -> HBM spill absorbed; acknowledge to the DMA engine.
            self.writes += 1
            self._next_free = max(float(cycle), self._next_free) \
                + self.service_interval
            self.send(ai.requester, AiMessage(
                op=AiOp.DMA_ACK, addr=ai.addr, txn_id=ai.txn_id,
                requester=ai.requester,
            ))
        else:
            raise RuntimeError(f"{self.name}: unexpected {ai.op} from {src}")
