"""System DMA engine: background tensor movement between L2 and HBM.

Table 7 shows ~1.5-1.7 TB/s of DMA alongside every core traffic class:
the DMA streams weights/activations between HBM stacks and L2 slices
while the cores compute.  The engine issues pull requests at a target
rate; the data flits themselves traverse the horizontal rings.
"""

from __future__ import annotations

from typing import Callable, Dict, List

from repro.ai.messages import AiMessage, AiOp, next_ai_txn
from repro.coherence.agent import ProtocolAgent
from repro.fabric.interface import Fabric
from repro.params import CACHE_LINE_BYTES
from repro.sim.rng import make_rng


class DmaEngine(ProtocolAgent):
    """Issues L2->HBM and HBM->L2 line transfers at a target rate."""

    def __init__(
        self,
        node_id: int,
        fabric: Fabric,
        l2_nodes: List[int],
        hbm_nodes: List[int],
        issues_per_cycle: float = 0.5,
        max_outstanding: int = 32,
        seed: int = 0,
        burst_bytes: int = CACHE_LINE_BYTES,
        name: str = "",
    ):
        super().__init__(node_id, fabric, name)
        self.burst_bytes = burst_bytes
        self.l2_nodes = list(l2_nodes)
        self.hbm_nodes = list(hbm_nodes)
        self.issues_per_cycle = issues_per_cycle
        self.max_outstanding = max_outstanding
        self._rng = make_rng(seed)
        self._outstanding: Dict[int, int] = {}
        self._credit = 0.0
        self.transfers_done = 0
        self.enabled = True

    @property
    def bytes_moved(self) -> float:
        return self.transfers_done * self.burst_bytes

    def step(self, cycle: int) -> None:
        super().step(cycle)
        if not self.enabled:
            return
        self._credit += self.issues_per_cycle
        while self._credit >= 1.0 and len(self._outstanding) < self.max_outstanding:
            self._credit -= 1.0
            txn = next_ai_txn()
            addr = self._rng.randrange(1 << 20)
            if self._rng.random() < 0.5:
                # L2 -> HBM spill: ask the L2 slice to ship a line out.
                src_node = self._rng.choice(self.l2_nodes)
                target = self._rng.choice(self.hbm_nodes)
            else:
                # HBM -> L2 prefetch.
                src_node = self._rng.choice(self.hbm_nodes)
                target = self._rng.choice(self.l2_nodes)
            self.send(src_node, AiMessage(
                op=AiOp.DMA_REQ, addr=addr, txn_id=txn,
                requester=self.node_id, target=target,
            ))
            self._outstanding[txn] = cycle

    def on_message(self, ai: AiMessage, src: int, cycle: int) -> None:
        if ai.op is not AiOp.DMA_ACK:
            raise RuntimeError(f"{self.name}: unexpected {ai.op} from {src}")
        if self._outstanding.pop(ai.txn_id, None) is not None:
            self.transfers_done += 1
