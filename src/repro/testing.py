"""Utilities for exercising fabrics in tests, examples, and benchmarks."""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence

from repro.fabric.interface import Fabric
from repro.fabric.message import Message, MessageKind
from repro.sim.rng import make_rng


def run_to_drain(
    fabric: Fabric,
    start_cycle: int = 0,
    max_cycles: int = 100_000,
    watchdog=None,
    patience: int = 2048,
) -> int:
    """Step ``fabric`` until every accepted message is delivered or dropped.

    Returns the cycle after draining.  Raises RuntimeError on timeout so a
    livelocked configuration fails loudly in tests.

    A progress watchdog is armed by default (``watchdog=None`` builds a
    :class:`repro.faults.watchdog.ProgressWatchdog` over the fabric with
    ``patience``): a wedged fabric — black-holed link, disabled recovery —
    raises :class:`repro.faults.watchdog.NoProgressError` with a full
    diagnostic dump well before the drain timeout.  Pass
    ``watchdog=False`` to disable, or a ready-made watchdog to reuse one.
    """
    if watchdog is None:
        from repro.faults.watchdog import ProgressWatchdog
        watchdog = ProgressWatchdog.for_fabric(fabric, patience=patience)
    elif watchdog is False:
        watchdog = None
    cycle = start_cycle
    while fabric.stats.in_flight > 0:
        if cycle - start_cycle >= max_cycles:
            raise RuntimeError(
                f"fabric failed to drain within {max_cycles} cycles; "
                f"{fabric.stats.in_flight} messages stuck"
            )
        fabric.step(cycle)
        cycle += 1
        if watchdog is not None:
            watchdog.observe(cycle)
    return cycle


def inject_all(
    fabric: Fabric,
    messages: Sequence[Message],
    start_cycle: int = 0,
    max_cycles: int = 100_000,
) -> int:
    """Inject messages (retrying on refusal) while stepping the fabric.

    Returns the cycle after the last acceptance.
    """
    cycle = start_cycle
    pending = list(messages)
    while pending:
        if cycle - start_cycle >= max_cycles:
            raise RuntimeError(f"could not inject within {max_cycles} cycles")
        while pending and fabric.try_inject(pending[0]):
            pending.pop(0)
        fabric.step(cycle)
        cycle += 1
    return cycle


def uniform_messages(
    sources: Sequence[int],
    destinations: Sequence[int],
    count: int,
    seed: int = 0,
    kind: MessageKind = MessageKind.DATA,
) -> List[Message]:
    """Uniform-random src/dst message list (src != dst when possible)."""
    rng = make_rng(seed)
    out: List[Message] = []
    for _ in range(count):
        src = rng.choice(list(sources))
        choices = [d for d in destinations if d != src] or list(destinations)
        out.append(Message(src=src, dst=rng.choice(choices), kind=kind))
    return out


def drive(
    fabric: Fabric,
    cycles: int,
    generator: Callable[[int], Optional[List[Message]]],
    start_cycle: int = 0,
) -> int:
    """Step ``cycles`` cycles, offering ``generator(cycle)``'s messages.

    Messages the fabric refuses are dropped (open-loop traffic); use
    :class:`repro.fabric.interface.InjectRetryBuffer` for closed-loop.
    Returns how many messages were accepted.
    """
    accepted = 0
    for cycle in range(start_cycle, start_cycle + cycles):
        batch = generator(cycle)
        if batch:
            for msg in batch:
                msg.created_cycle = cycle
                if fabric.try_inject(msg):
                    accepted += 1
        fabric.step(cycle)
    return accepted
