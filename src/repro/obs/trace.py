"""The per-flit event recorder and its nil-object stand-in.

Event model
-----------

Every event is a 6-tuple ``(cycle, kind, msg, ring, stop, info)``:

- ``cycle`` — the simulation cycle the event happened on;
- ``kind`` — one of the twelve kinds in
  :data:`repro.obs.export.EVENT_KINDS`;
- ``msg`` — the message id of the flit involved (``-1`` if none);
- ``ring``/``stop`` — where it happened (``-1`` for off-ring events:
  bridge internals and the D2D link);
- ``info`` — a compact ``key=value`` detail string (port key,
  direction, bridge/link identity, retry attempt, ...).

Determinism contract
--------------------

The fast step (:meth:`repro.core.ring.Ring.step_fast`) may visit
stations in a different *within-cycle* order than the reference walk,
while producing identical state transitions.  The recorder therefore
canonicalises: :meth:`TraceRecorder.sorted_events` returns the events in
lexicographic tuple order (cycle first), a total order independent of
emission order.  Two runs whose per-cycle event *sets* match — which the
fast/reference equivalence contract guarantees — serialize to
byte-identical JSONL.  ``tests/test_obs_trace.py`` pins this for the
tiny-pair and Server-CPU systems.

Cost contract
-------------

A fabric's recorder lives at ``FabricStats.trace`` and defaults to
:data:`NULL_TRACE`, a shared :class:`NullTrace` whose ``enabled`` is
False.  Every hook site reads the attribute once and tests ``enabled``,
so the disabled path costs one attribute check per potential event and
never allocates.  ``repro-noc bench`` (the committed trajectory) runs
with tracing disabled and its regression gate bounds the hook cost.
"""

from __future__ import annotations

from typing import FrozenSet, Iterable, List, Optional, Tuple

#: One recorded event: (cycle, kind, msg, ring, stop, info).
TraceEvent = Tuple[int, str, int, int, int, str]


def port_key_str(key: Tuple) -> str:
    """Compact rendering of a station port key.

    ``("node", 3)`` -> ``"node:3"``; ``("bridge", 0, 1)`` ->
    ``"bridge:0:1"``.
    """
    return ":".join(str(part) for part in key)


class NullTrace:
    """Nil-object recorder: absorbs every emit, reports ``enabled=False``.

    One shared instance (:data:`NULL_TRACE`) is the default value of
    ``FabricStats.trace``; hook sites guard on :attr:`enabled` so the
    only cost of a disabled trace is that attribute check.
    """

    __slots__ = ()

    enabled = False

    def emit(self, cycle: int, kind: str, msg: int, ring: int, stop: int,
             info: str) -> None:
        """Discard the event (the enabled-guard makes this unreachable
        from the hook sites; kept so miswired callers stay safe)."""

    def __deepcopy__(self, memo) -> "NullTrace":
        # The verify subsystem deep-copies whole fabrics; the nil object
        # stays a shared singleton so clones cost nothing here.
        return self

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "NullTrace()"


#: The shared disabled recorder (default ``FabricStats.trace``).
NULL_TRACE = NullTrace()


class TraceRecorder:
    """Collects per-flit events from an instrumented fabric.

    Attach with :meth:`repro.core.network.MultiRingFabric.
    attach_trace_recorder`; the fabric stores the recorder on its shared
    :class:`~repro.fabric.stats.FabricStats`, which every ring, station,
    bridge, and D2D link already holds — one assignment wires the whole
    fabric.

    ``kinds`` restricts recording to a subset of event kinds (None =
    all).  ``limit`` caps stored events; excess emits are counted in
    :attr:`dropped_events` instead of stored, so a runaway trace degrades
    to a counter rather than exhausting memory.
    """

    __slots__ = ("enabled", "kinds", "limit", "events", "dropped_events")

    def __init__(self, kinds: Optional[Iterable[str]] = None,
                 limit: Optional[int] = None):
        if limit is not None and limit < 0:
            raise ValueError("limit must be >= 0 (None = unbounded)")
        self.enabled = True
        self.kinds: Optional[FrozenSet[str]] = (
            frozenset(kinds) if kinds is not None else None)
        self.limit = limit
        self.events: List[TraceEvent] = []
        self.dropped_events = 0

    def emit(self, cycle: int, kind: str, msg: int, ring: int, stop: int,
             info: str) -> None:
        """Record one event (hook sites call this behind the
        ``enabled`` guard)."""
        if self.kinds is not None and kind not in self.kinds:
            return
        if self.limit is not None and len(self.events) >= self.limit:
            self.dropped_events += 1
            return
        self.events.append((cycle, kind, msg, ring, stop, info))

    def __len__(self) -> int:
        return len(self.events)

    def sorted_events(self) -> List[TraceEvent]:
        """Events in canonical order: lexicographic over the tuple.

        Cycle is the leading field, so the order is chronological; the
        remaining fields break within-cycle ties identically regardless
        of which stepping path emitted them.
        """
        return sorted(self.events)

    def clear(self) -> None:
        self.events.clear()
        self.dropped_events = 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        kinds = "all" if self.kinds is None else ",".join(sorted(self.kinds))
        return (f"TraceRecorder({len(self.events)} events, kinds={kinds}, "
                f"dropped={self.dropped_events})")
