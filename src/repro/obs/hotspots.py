"""Per-station hotspot attribution from a :class:`MetricsRegistry`.

The hierarchical-ring deflection literature tunes exactly the behaviours
the aggregate counters cannot localise: which stations deflect, where
I/E-tag reservations concentrate, which bridge endpoints swap under
DRM.  The hotspot table ranks stations by *contention score* — the sum
of their deflections, I-tag and E-tag placements, and SWAP exchanges —
so a saturated run points straight at the stops worth re-placing or
re-provisioning.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.analysis.report import format_table
from repro.obs.metrics import MetricsRegistry, STATION_KINDS

#: Counter kinds that indicate contention (vs. plain throughput).
CONTENTION_KINDS = ("deflect", "itag", "etag", "swap")


def contention_score(counters: Dict[str, int]) -> int:
    """Contention events charged to one station."""
    return sum(counters.get(kind, 0) for kind in CONTENTION_KINDS)


def hotspot_rows(
    registry: MetricsRegistry, top: int = 10,
) -> List[Tuple[int, int, Dict[str, int], int]]:
    """Top ``top`` stations as ``(ring, stop, counters, score)`` rows.

    Sorted by score descending, then (ring, stop) ascending so equal
    scores render deterministically.  Stations whose score is zero are
    included only if nothing scored (an uncontended run still lists its
    busiest stations by traffic).
    """
    if top < 1:
        raise ValueError("top must be >= 1")
    scored = [
        (ring, stop, counters, contention_score(counters))
        for (ring, stop), counters in registry.stations.items()
    ]
    if any(score for _, _, _, score in scored):
        key = lambda row: (-row[3], row[0], row[1])  # noqa: E731
    else:
        key = lambda row: (-(row[2].get("inject", 0)  # noqa: E731
                             + row[2].get("eject", 0)), row[0], row[1])
    scored.sort(key=key)
    return scored[:top]


def format_hotspots(registry: MetricsRegistry, top: int = 10) -> str:
    """Render the hotspot table (plain text, aligned columns)."""
    rows = hotspot_rows(registry, top)
    if not rows:
        return "no station events recorded"
    headers = ["ring", "stop"] + list(STATION_KINDS) + ["score"]
    table_rows = [
        [ring, stop] + [counters.get(kind, 0) for kind in STATION_KINDS]
        + [score]
        for ring, stop, counters, score in rows
    ]
    return format_table(headers, table_rows)
