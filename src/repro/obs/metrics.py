"""Metrics registry: per-station/ring/link counters and latency histograms.

The registry is an offline consumer of the observability data: it
ingests a :class:`~repro.obs.trace.TraceRecorder` event stream into
per-station, per-ring, per-bridge, and per-link counters, and the
fabric's latency samples into log-bucketed histograms whose
p50/p95/p99 come from the shared percentile definition
(:func:`repro.analysis.metrics.percentile`).

:class:`SnapshotSampler` adds the time axis: hooked to the engine's
``check_every`` cadence (``Simulator.run_until(..., on_check=sampler)``)
it records periodic fabric-wide snapshots (delivered/injected/
deflections/occupancy), giving counter *trajectories* instead of only
end-of-run totals.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.analysis.metrics import percentile
from repro.obs.trace import TraceEvent

#: Event kinds attributed to a (ring, stop) station.
STATION_KINDS = ("accept", "inject", "eject", "deflect", "itag", "etag",
                 "swap")

#: Event kinds attributed to a bridge (via ``bridge=``/``link=`` info).
BRIDGE_KINDS = ("bridge-enter", "bridge-exit")

#: Event kinds attributed to a D2D link direction (``link=`` info).
LINK_KINDS = ("link-retry", "drop", "bridge-exit")


def _info_field(info: str, name: str) -> Optional[str]:
    """Value of ``name=...`` inside a compact info string, else None."""
    for part in info.split():
        if part.startswith(name + "="):
            return part[len(name) + 1:]
    return None


class LogHistogram:
    """Power-of-two-bucketed histogram of non-negative integer latencies.

    Bucket ``b`` holds values whose bit length is ``b`` (``0`` in bucket
    0, ``[2^(b-1), 2^b)`` in bucket ``b >= 1``), so memory is
    O(log(max latency)) no matter how many samples arrive.  The exact
    count, sum, min, and max are kept alongside; :meth:`percentile`
    applies the shared rank definition to the cumulative bucket counts
    and interpolates inside the winning bucket.  The result stays inside
    that bucket's value range, which also contains the floor-rank order
    statistic — so the approximation is within one bucket width (a
    factor of two) of that order statistic.  The *interpolated* exact
    percentile may reach into the next bucket, so it carries no such
    bound; use ``FabricStats.samples`` when exactness matters.
    """

    __slots__ = ("counts", "total", "sum", "min", "max")

    def __init__(self) -> None:
        self.counts: Dict[int, int] = {}
        self.total = 0
        self.sum = 0
        self.min: Optional[int] = None
        self.max: Optional[int] = None

    def add(self, value: int) -> None:
        value = int(value)
        if value < 0:
            raise ValueError("latencies are non-negative")
        bucket = value.bit_length()
        self.counts[bucket] = self.counts.get(bucket, 0) + 1
        self.total += 1
        self.sum += value
        self.min = value if self.min is None else min(self.min, value)
        self.max = value if self.max is None else max(self.max, value)

    def extend(self, values: Sequence[int]) -> None:
        for value in values:
            self.add(value)

    def mean(self) -> Optional[float]:
        if not self.total:
            return None
        return self.sum / self.total

    @staticmethod
    def bucket_bounds(bucket: int) -> Tuple[int, int]:
        """Inclusive ``(low, high)`` value range of ``bucket``."""
        if bucket <= 0:
            return (0, 0)
        return (1 << (bucket - 1), (1 << bucket) - 1)

    def percentile(self, pct: float) -> Optional[float]:
        """Approximate percentile (shared rank rule; None when empty)."""
        if not 0.0 <= pct <= 100.0:
            raise ValueError("pct must be within [0, 100]")
        if not self.total:
            return None
        # The endpoints are tracked exactly; no need to approximate them.
        if pct == 0.0:
            return float(self.min)
        if pct == 100.0:
            return float(self.max)
        rank = pct / 100.0 * (self.total - 1)
        seen = 0
        for bucket in sorted(self.counts):
            count = self.counts[bucket]
            if rank < seen + count:
                low, high = self.bucket_bounds(bucket)
                low = max(low, self.min if self.min is not None else low)
                high = min(high, self.max if self.max is not None else high)
                if count == 1 or high == low:
                    return float(low)
                inside = (rank - seen) / (count - 1)
                return low + (high - low) * inside
            seen += count
        return float(self.max if self.max is not None else 0)

    def summary(self) -> Dict[str, Optional[float]]:
        return {
            "count": float(self.total),
            "mean": self.mean(),
            "p50": self.percentile(50),
            "p95": self.percentile(95),
            "p99": self.percentile(99),
            "max": float(self.max) if self.max is not None else None,
        }


def _zero_counts(kinds: Sequence[str]) -> Dict[str, int]:
    return {kind: 0 for kind in kinds}


class MetricsRegistry:
    """Aggregated observability counters for one traced run."""

    def __init__(self) -> None:
        #: (ring, stop) -> {kind: count} over :data:`STATION_KINDS`.
        self.stations: Dict[Tuple[int, int], Dict[str, int]] = {}
        #: bridge id -> {kind: count} over :data:`BRIDGE_KINDS`.
        self.bridges: Dict[int, Dict[str, int]] = {}
        #: link label (e.g. ``bridge0:a->b``) -> retry/drop/exit counts.
        self.links: Dict[str, Dict[str, int]] = {}
        #: Network latency (inject -> delivery) histogram.
        self.network_latency = LogHistogram()
        #: Total latency (creation -> delivery) histogram.
        self.total_latency = LogHistogram()
        #: Periodic fabric snapshots (see :meth:`snapshot`).
        self.snapshots: List[Dict[str, int]] = []
        self.events_seen = 0

    # -- event ingestion ---------------------------------------------------

    def observe_event(self, event: TraceEvent) -> None:
        cycle, kind, msg, ring, stop, info = event
        self.events_seen += 1
        if kind in STATION_KINDS and ring >= 0:
            key = (ring, stop)
            counters = self.stations.get(key)
            if counters is None:
                counters = self.stations[key] = _zero_counts(STATION_KINDS)
            counters[kind] += 1
            return
        link = _info_field(info, "link")
        if link is not None and kind in LINK_KINDS:
            counters = self.links.get(link)
            if counters is None:
                counters = self.links[link] = _zero_counts(LINK_KINDS)
            counters[kind] += 1
        if kind in BRIDGE_KINDS:
            bridge = _info_field(info, "bridge")
            if bridge is None and link is not None:
                # "link=bridge0:a->b" carries the bridge identity too.
                head = link.split(":", 1)[0]
                bridge = head[len("bridge"):] if head.startswith("bridge") \
                    else None
            if bridge is not None:
                counters = self.bridges.get(int(bridge))
                if counters is None:
                    counters = self.bridges[int(bridge)] = _zero_counts(
                        BRIDGE_KINDS)
                counters[kind] += 1

    def observe_events(self, events: Sequence[TraceEvent]) -> None:
        for event in events:
            self.observe_event(event)

    def observe_samples(self, samples) -> None:
        """Feed delivered-message latency samples
        (:class:`repro.fabric.stats.LatencySample`) into the histograms."""
        for sample in samples:
            self.network_latency.add(sample.network_latency)
            self.total_latency.add(sample.total_latency)

    def ingest(self, events: Sequence[TraceEvent], stats=None) -> None:
        """Convenience: events plus (optionally) ``stats.samples``."""
        self.observe_events(events)
        if stats is not None and getattr(stats, "samples", None):
            self.observe_samples(stats.samples)

    # -- aggregation -------------------------------------------------------

    def ring_totals(self) -> Dict[int, Dict[str, int]]:
        """Per-ring sums of the per-station counters."""
        totals: Dict[int, Dict[str, int]] = {}
        for (ring, _stop), counters in self.stations.items():
            ring_counters = totals.get(ring)
            if ring_counters is None:
                ring_counters = totals[ring] = _zero_counts(STATION_KINDS)
            for kind, count in counters.items():
                ring_counters[kind] += count
        return totals

    def latency_summary(self) -> Dict[str, Dict[str, Optional[float]]]:
        return {
            "network": self.network_latency.summary(),
            "total": self.total_latency.summary(),
        }

    # -- time axis ---------------------------------------------------------

    def snapshot(self, cycle: int, fabric) -> Dict[str, int]:
        """Record one fabric-wide sample (duck-typed over any fabric
        exposing ``stats`` and, optionally, ``occupancy()``)."""
        stats = fabric.stats
        occupancy = fabric.occupancy() if hasattr(fabric, "occupancy") else 0
        record = {
            "cycle": cycle,
            "accepted": stats.accepted,
            "injected": stats.injected,
            "delivered": stats.delivered,
            "deflections": stats.deflections,
            "dropped": stats.dropped,
            "in_network": occupancy,
        }
        self.snapshots.append(record)
        return record


class SnapshotSampler:
    """Callable hook pairing a fabric with a registry.

    Pass as ``on_check`` to :meth:`repro.sim.engine.Simulator.run_until`
    so sampling rides the engine's ``check_every`` cadence, or call it
    directly from any loop.  Consecutive calls for the same cycle (the
    final partial-window check) record once.
    """

    def __init__(self, fabric, registry: MetricsRegistry):
        self.fabric = fabric
        self.registry = registry
        self._last_cycle: Optional[int] = None

    def __call__(self, cycle: int) -> None:
        if cycle == self._last_cycle:
            return
        self._last_cycle = cycle
        self.registry.snapshot(cycle, self.fabric)


# Re-exported for convenience: the shared percentile definition the
# histograms approximate.
__all__ = [
    "BRIDGE_KINDS",
    "LINK_KINDS",
    "LogHistogram",
    "MetricsRegistry",
    "STATION_KINDS",
    "SnapshotSampler",
    "percentile",
]
