"""Event-stream exporters and the schema validator.

Two wire formats:

- **JSONL** — one event per line, fixed key order
  (``cycle, kind, msg, ring, stop, info``).  Byte-identical for
  byte-identical event streams, which is what the fast/reference
  trace-equivalence contract (and the CI ``trace-smoke`` job) compares.
- **Chrome ``trace_event``** — loadable in ``chrome://tracing`` /
  Perfetto.  Every ring gets a track (tid = ring id) and every bridge
  gets a track (tid = ``_BRIDGE_TID_BASE`` + bridge id; the reliable
  D2D link's events land on its bridge's track).  Events are instant
  events with the cycle number as the microsecond timestamp.
"""

from __future__ import annotations

import json
import re
from typing import Dict, Iterable, List, Optional, Sequence, TextIO, Union

from repro.obs.trace import TraceEvent

#: The twelve event kinds, in pipeline order (documentation order only;
#: streams are sorted by the canonical tuple order, not by this).
EVENT_KINDS = (
    "create",        # message routed and offered to its source port
    "accept",        # message entered the source Inject Queue
    "inject",        # flit won a ring slot (includes re-injection after a bridge)
    "deflect",       # eject refused; flit passes through and keeps circling
    "itag",          # injection-starved port reserved a passing slot
    "etag",          # deflected flit reserved the next freed eject buffer
    "bridge-enter",  # bridge drained the flit from a ring-side Eject Queue
    "bridge-exit",   # bridge handed the flit to the peer ring's Inject Queue
    "link-retry",    # reliable D2D link scheduled a retransmission (NAK)
    "drop",          # reliable D2D link abandoned the flit (retry budget)
    "swap",          # SWAP/DRM exchanged an eject and an inject in one cycle
    "eject",         # flit accepted into a destination Eject Queue
)

#: JSONL field names, in serialization order.
EVENT_FIELDS = ("cycle", "kind", "msg", "ring", "stop", "info")

_KIND_SET = frozenset(EVENT_KINDS)
_BRIDGE_TID_BASE = 1000
_BRIDGE_INFO = re.compile(r"(?:bridge=|link=bridge)(\d+)")


def event_to_dict(event: TraceEvent) -> Dict[str, Union[int, str]]:
    """One event tuple as a dict in :data:`EVENT_FIELDS` order."""
    return dict(zip(EVENT_FIELDS, event))


def events_to_jsonl(events: Iterable[TraceEvent]) -> str:
    """Serialize events to JSONL (one compact object per line).

    Key order and separators are fixed, so equal event streams produce
    equal bytes.
    """
    lines = [
        json.dumps(event_to_dict(event), separators=(",", ":"))
        for event in events
    ]
    return "\n".join(lines) + ("\n" if lines else "")


def write_jsonl(events: Iterable[TraceEvent], fh: TextIO) -> int:
    """Write events as JSONL; returns the number of events written."""
    count = 0
    for event in events:
        fh.write(json.dumps(event_to_dict(event), separators=(",", ":")))
        fh.write("\n")
        count += 1
    return count


def read_jsonl(fh: TextIO) -> List[TraceEvent]:
    """Parse a JSONL event dump back into event tuples."""
    events: List[TraceEvent] = []
    for line in fh:
        line = line.strip()
        if not line:
            continue
        record = json.loads(line)
        events.append(tuple(record[field] for field in EVENT_FIELDS))
    return events


def validate_event_stream(
    events: Sequence[Union[TraceEvent, Dict[str, Union[int, str]]]],
) -> List[str]:
    """Schema-check an event stream; returns human-readable errors.

    Accepts tuples or parsed JSONL dicts.  Checks per event: field
    count/types, a known kind, sane coordinates (``ring``/``stop`` are
    ``-1`` or non-negative, and off-ring events carry a bridge/link
    identity in ``info``); across events: non-decreasing cycles (the
    canonical order is chronological).  An empty list means the stream
    is valid.
    """
    errors: List[str] = []
    last_cycle: Optional[int] = None
    for index, raw in enumerate(events):
        if isinstance(raw, dict):
            try:
                event = tuple(raw[field] for field in EVENT_FIELDS)
            except KeyError as exc:
                errors.append(f"event {index}: missing field {exc}")
                continue
        else:
            event = tuple(raw)
        if len(event) != len(EVENT_FIELDS):
            errors.append(
                f"event {index}: {len(event)} fields, expected "
                f"{len(EVENT_FIELDS)}")
            continue
        cycle, kind, msg, ring, stop, info = event
        where = f"event {index} ({kind!r} @ cycle {cycle!r})"
        if not isinstance(cycle, int) or isinstance(cycle, bool) or cycle < 0:
            errors.append(f"{where}: cycle must be a non-negative int")
        if kind not in _KIND_SET:
            errors.append(f"{where}: unknown kind")
        for name, value in (("msg", msg), ("ring", ring), ("stop", stop)):
            if not isinstance(value, int) or isinstance(value, bool) \
                    or value < -1:
                errors.append(f"{where}: {name} must be an int >= -1")
        if not isinstance(info, str):
            errors.append(f"{where}: info must be a string")
        elif isinstance(ring, int) and ring < 0 \
                and kind in _KIND_SET and not _BRIDGE_INFO.search(info):
            errors.append(
                f"{where}: off-ring event needs a bridge=/link= identity "
                "in info")
        if isinstance(cycle, int) and not isinstance(cycle, bool):
            if last_cycle is not None and cycle < last_cycle:
                errors.append(
                    f"{where}: cycle decreased ({last_cycle} -> {cycle}); "
                    "stream is not in canonical order")
            last_cycle = cycle
    return errors


def _track_of(event: TraceEvent) -> Optional[int]:
    """Chrome thread id for an event: its ring, or its bridge's track."""
    ring = event[3]
    if isinstance(ring, int) and ring >= 0:
        return ring
    match = _BRIDGE_INFO.search(event[5])
    if match:
        return _BRIDGE_TID_BASE + int(match.group(1))
    return None


def write_chrome_trace(events: Sequence[TraceEvent], fh: TextIO,
                       process_name: str = "repro-noc fabric") -> int:
    """Write a Chrome ``trace_event`` file; returns events written.

    Instant events (phase ``i``, thread scope), one per trace event,
    timestamped with the cycle number.  Thread-name metadata labels each
    ring and bridge track.
    """
    trace_events: List[Dict] = [{
        "ph": "M", "pid": 0, "tid": 0, "name": "process_name",
        "args": {"name": process_name},
    }]
    tracks: Dict[int, str] = {}
    body: List[Dict] = []
    written = 0
    for event in events:
        tid = _track_of(event)
        if tid is None:
            continue
        if tid not in tracks:
            tracks[tid] = (f"ring {tid}" if tid < _BRIDGE_TID_BASE
                           else f"bridge {tid - _BRIDGE_TID_BASE}")
        cycle, kind, msg, ring, stop, info = event
        body.append({
            "ph": "i", "s": "t", "pid": 0, "tid": tid,
            "ts": cycle, "name": kind,
            "args": {"msg": msg, "ring": ring, "stop": stop, "info": info},
        })
        written += 1
    for tid in sorted(tracks):
        trace_events.append({
            "ph": "M", "pid": 0, "tid": tid, "name": "thread_name",
            "args": {"name": tracks[tid]},
        })
    trace_events.extend(body)
    json.dump({"traceEvents": trace_events,
               "displayTimeUnit": "ns",
               "metadata": {"clock": "cycles"}}, fh)
    fh.write("\n")
    return written
