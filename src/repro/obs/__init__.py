"""Flit-level observability: event tracing, metrics, exporters.

The fabric's end-of-run counters (:class:`repro.fabric.stats.FabricStats`)
say *how much* happened; this package says *where* and *when*.  Three
layers:

- :mod:`repro.obs.trace` — :class:`TraceRecorder`, the per-flit event
  stream (create/accept/inject/deflect/itag/etag/bridge-enter/
  bridge-exit/link-retry/drop/swap/eject) hooked into the rings,
  stations, bridges, and the reliable D2D link layer.  Disabled by
  default behind a nil object (:data:`NULL_TRACE`) so an untraced run
  pays one attribute check per potential event.
- :mod:`repro.obs.metrics` — :class:`MetricsRegistry`: per-station /
  per-ring / per-link counters, log-bucketed latency histograms, and
  periodic fabric snapshots sampled on the engine's ``check_every``
  cadence (:class:`SnapshotSampler`).
- :mod:`repro.obs.export` — JSONL event dump, Chrome ``trace_event``
  export (one track per ring and per bridge/link), and the event-schema
  validator the CI ``trace-smoke`` job runs.

Distinct from :mod:`repro.workloads.trace`, which records *message-level
traffic* for replay; this package records *in-network flit events* for
attribution.  See ``docs/OBSERVABILITY.md``.
"""

from repro.obs.export import (
    EVENT_FIELDS,
    EVENT_KINDS,
    event_to_dict,
    events_to_jsonl,
    read_jsonl,
    validate_event_stream,
    write_chrome_trace,
    write_jsonl,
)
from repro.obs.hotspots import format_hotspots, hotspot_rows
from repro.obs.metrics import LogHistogram, MetricsRegistry, SnapshotSampler
from repro.obs.trace import NULL_TRACE, NullTrace, TraceEvent, TraceRecorder

__all__ = [
    "EVENT_FIELDS",
    "EVENT_KINDS",
    "LogHistogram",
    "MetricsRegistry",
    "NULL_TRACE",
    "NullTrace",
    "SnapshotSampler",
    "TraceEvent",
    "TraceRecorder",
    "event_to_dict",
    "events_to_jsonl",
    "format_hotspots",
    "hotspot_rows",
    "read_jsonl",
    "validate_event_stream",
    "write_chrome_trace",
    "write_jsonl",
]
