"""Shared findings-report conventions for ``check``/``verify``/``analyze``.

Three CLI layers diagnose problems statically — the lint/validator stack
(``repro-noc check``), the formal-verification stack (``repro-noc
verify``), and the fabric analyzer (``repro-noc analyze``).  They share
one contract, owned here so a third implementation never drifts:

- **exit codes**: 0 clean, 1 findings (any error-severity finding, a
  deadlock-capable cycle, a failed gate), 2 usage errors or an escaped
  invariant violation;
- **ordering**: findings render in a stable ``(path, line, rule)`` order
  so reports are diffable across runs regardless of which checker layer
  emitted what first;
- **accounting**: per-rule finding counts for machine-readable reports.

:class:`FindingsReport` is the reusable base: it owns the findings list,
the error/warning split, the exit code, and the stable rendering.
``CheckReport`` extends it with lint/validator counters and the
analyzer's per-system reports embed it for their findings sections.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Sequence

from repro.lint.findings import Finding, Severity

#: The shared exit-code convention (documented in the CLI epilog).
EXIT_OK = 0
EXIT_FINDINGS = 1
EXIT_USAGE = 2


def sort_findings(findings: Iterable[Finding]) -> List[Finding]:
    """Stable ``(path, line, rule)`` order for rendering and diffing."""
    return sorted(findings, key=lambda f: (f.path or "", f.line or 0, f.rule))


def rule_counts(findings: Iterable[Finding]) -> Dict[str, int]:
    """Finding count per rule id, in sorted rule order."""
    counts: Dict[str, int] = {}
    for finding in findings:
        counts[finding.rule] = counts.get(finding.rule, 0) + 1
    return {rule: counts[rule] for rule in sorted(counts)}


def exit_code_for(findings: Sequence[Finding],
                  fail_on: str = Severity.ERROR) -> int:
    """EXIT_FINDINGS iff any finding is at/above ``fail_on`` severity.

    ``fail_on`` defaults to ``error`` (warnings report but pass); CI can
    tighten to ``warn`` or ``info``.
    """
    threshold = Severity.RANK.get(Severity.normalize(fail_on),
                                  Severity.RANK[Severity.ERROR])
    return (EXIT_FINDINGS
            if any(f.rank >= threshold for f in findings) else EXIT_OK)


@dataclass
class FindingsReport:
    """A findings list plus the shared split/ordering/exit conventions."""

    findings: List[Finding] = field(default_factory=list)
    #: Severity threshold for the exit code (``--fail-on``).
    fail_on: str = Severity.ERROR

    @property
    def errors(self) -> List[Finding]:
        return [f for f in self.findings if f.is_error]

    @property
    def warnings(self) -> List[Finding]:
        return [f for f in self.findings if f.severity == Severity.WARN]

    @property
    def infos(self) -> List[Finding]:
        return [f for f in self.findings if f.severity == Severity.INFO]

    @property
    def exit_code(self) -> int:
        return exit_code_for(self.findings, self.fail_on)

    def rule_counts(self) -> Dict[str, int]:
        return rule_counts(self.findings)

    def format_findings(self) -> List[str]:
        """One rendered line per finding, in the stable shared order."""
        return [f.format() for f in sort_findings(self.findings)]

    def findings_to_dict(self) -> dict:
        """The findings fragment every report's ``to_dict`` embeds."""
        return {
            "findings": [f.to_dict() for f in sort_findings(self.findings)],
            "errors": len(self.errors),
            "warnings": len(self.warnings),
            "infos": len(self.infos),
            "rule_counts": self.rule_counts(),
        }
