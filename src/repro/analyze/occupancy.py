"""Static ring-occupancy and saturation estimates from a workload.

Maps a :class:`~repro.analyze.workload.WorkloadDescriptor` onto the
router's hop graph and compares the resulting steady-state demand
against the transport ceilings of :mod:`repro.analyze.bounds`:

- each flow of ``rate`` flits/cycle riding ``d`` stops on a ring demands
  ``rate * d`` slot-hops/cycle of that ring's ``nstops * lanes * dirs``
  capacity;
- each bridge crossing demands ``rate`` flits/cycle of the bridge's
  one-flit-per-cycle direction;
- each source demands ``rate`` passing slots of its station's
  ``lanes * dirs`` injection opportunities; each destination demands
  drain capacity of ``eject_drain_per_cycle``.

Utilization >= 1.0 is statically infeasible (demand exceeds a hard
ceiling — the fabric *cannot* deliver the offered load) and is an error
finding; >= :data:`WARN_UTILIZATION` is a warning, since deflection
fabrics degrade well before nominal capacity.  This is the static
complement to the runtime ``ProgressWatchdog``: the watchdog catches a
wedged run after the fact, these findings predict the wedge from the
config alone.

The replay-buffer check models the reliable-link ack window: with
``replay_depth`` slots and a ``round_trip(link_latency)`` cycle ack
loop, an RBRG-L2 link sustains at most ``depth / round_trip``
flits/cycle regardless of raw link bandwidth.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.core.config import MultiRingConfig, TopologySpec
from repro.core.routing import Router, ring_distance
from repro.analyze.bounds import FabricBounds
from repro.analyze.workload import WorkloadDescriptor
from repro.lint.findings import Finding, Severity

#: Utilization at which a warning finding is emitted.
WARN_UTILIZATION = 0.75


def _finding(rule: str, message: str, severity: Severity) -> Finding:
    return Finding(rule=rule, message=message, severity=severity,
                   path=None)


@dataclass
class OccupancyEstimate:
    """Steady-state utilization estimates for one workload."""

    workload_name: str = "workload"
    total_rate: float = 0.0
    #: ring_id -> demanded slot-hops per cycle / capacity.
    ring_utilization: Dict[int, float] = field(default_factory=dict)
    #: (bridge_id, direction 0=a->b) -> demanded flits per cycle / 1.
    link_utilization: Dict[Tuple[int, int], float] = field(
        default_factory=dict)
    #: node -> injection demand / injection opportunity.
    inject_utilization: Dict[int, float] = field(default_factory=dict)
    #: node -> ejection demand / drain capacity.
    eject_utilization: Dict[int, float] = field(default_factory=dict)
    findings: List[Finding] = field(default_factory=list)

    @property
    def feasible(self) -> bool:
        """False iff demand statically exceeds a hard ceiling."""
        return not any(f.is_error for f in self.findings)

    @property
    def max_ring_utilization(self) -> float:
        return max(self.ring_utilization.values(), default=0.0)

    @property
    def max_link_utilization(self) -> float:
        return max(self.link_utilization.values(), default=0.0)

    def to_dict(self) -> dict:
        return {
            "workload": self.workload_name,
            "total_rate_flits_per_cycle": self.total_rate,
            "feasible": self.feasible,
            "ring_utilization": {str(k): v for k, v in
                                 sorted(self.ring_utilization.items())},
            "link_utilization": {
                f"{bid}:{'ab' if d == 0 else 'ba'}": v
                for (bid, d), v in sorted(self.link_utilization.items())},
            "inject_utilization": {str(k): v for k, v in
                                   sorted(self.inject_utilization.items())},
            "eject_utilization": {str(k): v for k, v in
                                  sorted(self.eject_utilization.items())},
            "findings": [f.to_dict() for f in self.findings],
        }


def _severity_for(utilization: float) -> Optional[Severity]:
    if utilization >= 1.0:
        return Severity.ERROR
    if utilization >= WARN_UTILIZATION:
        return Severity.WARN
    return None


def estimate_occupancy(
    spec: TopologySpec,
    config: MultiRingConfig,
    workload: WorkloadDescriptor,
    bounds: FabricBounds,
    router: Optional[Router] = None,
) -> OccupancyEstimate:
    """Project ``workload`` onto routes and rate every ceiling."""
    if router is None:
        router = Router(spec, bridge_penalty=config.bridge_route_penalty)
    rings = {r.ring_id: r for r in spec.rings}
    bridges = {b.bridge_id: b for b in spec.bridges}
    ring_caps = {r.ring_id: r.slot_hops_per_cycle for r in bounds.rings}
    link_caps = {l.bridge_id: l.flits_per_cycle_per_direction
                 for l in bounds.links}
    ring_lanes = {r.ring_id: r.lanes * r.directions for r in bounds.rings}

    est = OccupancyEstimate(workload_name=workload.name,
                            total_rate=workload.total_rate)
    ring_demand: Dict[int, float] = {}
    link_demand: Dict[Tuple[int, int], float] = {}
    # Demand over each L2 link in flits/cycle, both directions summed,
    # for the replay-window check.
    l2_demand: Dict[int, float] = {}

    for flow in workload.flows:
        if flow.rate <= 0:
            continue
        _, stop = router.placement(flow.src)
        for hop in router.route(flow.src, flow.dst):
            ring = rings[hop.ring]
            dist = ring_distance(ring.nstops, stop, hop.exit_stop,
                                 ring.bidirectional)
            ring_demand[hop.ring] = (ring_demand.get(hop.ring, 0.0)
                                     + flow.rate * dist)
            if hop.port_key[0] == "bridge":
                bid, side = hop.port_key[1], hop.port_key[2]
                key = (bid, side)
                link_demand[key] = link_demand.get(key, 0.0) + flow.rate
                bridge = bridges[bid]
                if bridge.level == 2:
                    l2_demand[bid] = l2_demand.get(bid, 0.0) + flow.rate
                stop = bridge.stop_b if side == 0 else bridge.stop_a

    for ring_id in sorted(ring_caps):
        demand = ring_demand.get(ring_id, 0.0)
        util = demand / ring_caps[ring_id] if ring_caps[ring_id] else 0.0
        est.ring_utilization[ring_id] = util
        severity = _severity_for(util)
        if severity is not None:
            est.findings.append(_finding(
                "ring-saturated",
                f"ring {ring_id} demand {demand:.2f} slot-hops/cycle is "
                f"{util:.0%} of its {ring_caps[ring_id]} slot-hop/cycle "
                "transport ceiling", severity))

    for (bid, side) in sorted(link_demand):
        demand = link_demand[(bid, side)]
        cap = link_caps.get(bid, 1)
        util = demand / cap if cap else 0.0
        est.link_utilization[(bid, side)] = util
        severity = _severity_for(util)
        if severity is not None:
            direction = "a->b" if side == 0 else "b->a"
            est.findings.append(_finding(
                "link-saturated",
                f"bridge {bid} direction {direction} demand "
                f"{demand:.2f} flits/cycle is {util:.0%} of its "
                f"{cap} flit/cycle forwarding ceiling", severity))

    placements = {p.node: p.ring for p in spec.nodes}
    for node, rate in workload.per_node_injection.items():
        cap = ring_lanes.get(placements.get(node, -1), 0)
        util = rate / cap if cap else float("inf")
        est.inject_utilization[node] = util
        severity = _severity_for(util)
        if severity is not None:
            est.findings.append(_finding(
                "inject-overload",
                f"node {node} injects {rate:.2f} flits/cycle against "
                f"{cap} passing-slot opportunities per cycle "
                f"({util:.0%}); its inject queue "
                f"(depth {config.queues.inject_queue_depth}) backs up",
                severity))
    for node, rate in workload.per_node_ejection.items():
        cap = config.eject_drain_per_cycle
        util = rate / cap if cap else float("inf")
        est.eject_utilization[node] = util
        severity = _severity_for(util)
        if severity is not None:
            est.findings.append(_finding(
                "eject-overload",
                f"node {node} receives {rate:.2f} flits/cycle against an "
                f"eject drain of {cap}/cycle ({util:.0%}); flits deflect "
                "past a full eject queue "
                f"(depth {config.queues.eject_queue_depth})", severity))

    reliability = config.reliability
    if reliability is not None and getattr(reliability, "enable_retry", False):
        for bid in sorted(l2_demand):
            bridge = bridges[bid]
            depth = reliability.replay_depth
            if depth <= 0:
                continue  # auto-sized buffers never throttle
            round_trip = reliability.round_trip(bridge.link_latency)
            sustainable = min(1.0, depth / round_trip) if round_trip else 1.0
            demand = l2_demand[bid]
            if demand > sustainable:
                est.findings.append(_finding(
                    "replay-buffer-throttles",
                    f"bridge {bid} carries {demand:.2f} flits/cycle but "
                    f"replay_depth {depth} over a {round_trip}-cycle ack "
                    f"round trip sustains only {sustainable:.2f} "
                    "flits/cycle; the replay window throttles the link",
                    Severity.ERROR))
    return est
