"""Area/energy/wire budget checks against the physical co-design model.

Evaluates :mod:`repro.phys` for a fabric configuration and compares the
results with user-supplied ceilings (:class:`BudgetSpec`).  Estimates
are the paper's Section 3.3/Table 4 first-order models:

- **area** — :func:`repro.phys.area.noc_area` on the chosen wire
  fabric (station/bridge logic, queues, wire tracks);
- **wire length** — total routed track length: ring circumference per
  lane per direction, plus both directions of every RBRG-L2 die-to-die
  link (its length approximated as ``link_latency`` jump distances,
  the distance-per-cycle identity);
- **energy per flit** — the worst-case route: max zero-load hop count
  times the bufferless hop energy, plus one D2D crossing per L2 bridge
  on the worst route's path;
- **power** — offered load times mean route energy when a workload is
  given, else the delivered-bandwidth ceiling times the worst route
  energy (a deliberately conservative static peak).

Each ceiling that an estimate exceeds becomes an error finding
(``budget-area`` / ``budget-wire`` / ``budget-energy`` /
``budget-power``), so ``repro-noc analyze --budget`` exits 1 exactly
when the configuration cannot fit its physical envelope.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import List, Optional

from repro.core.config import MultiRingConfig, TopologySpec
from repro.lint.findings import Finding, Severity
from repro.params import NOC_FREQ_HZ
from repro.phys.area import FLIT_BITS, AreaBreakdown, noc_area
from repro.phys.energy import EnergyModel
from repro.phys.repeaters import plan_repeaters
from repro.phys.wires import HIGH_DENSITY, HIGH_SPEED, WireFabric

_FABRICS = {f.name: f for f in (HIGH_DENSITY, HIGH_SPEED)}


@dataclass
class BudgetSpec:
    """User-supplied physical ceilings (None = unconstrained)."""

    max_area_mm2: Optional[float] = None
    max_power_w: Optional[float] = None
    max_wire_mm: Optional[float] = None
    max_energy_pj_per_flit: Optional[float] = None
    wire_fabric: str = HIGH_DENSITY.name

    @property
    def constrained(self) -> bool:
        return any(v is not None for v in (
            self.max_area_mm2, self.max_power_w, self.max_wire_mm,
            self.max_energy_pj_per_flit))

    def fabric(self) -> WireFabric:
        try:
            return _FABRICS[self.wire_fabric]
        except KeyError:
            raise ValueError(
                f"unknown wire fabric '{self.wire_fabric}' "
                f"(known: {', '.join(sorted(_FABRICS))})")

    def to_dict(self) -> dict:
        return {
            "max_area_mm2": self.max_area_mm2,
            "max_power_w": self.max_power_w,
            "max_wire_mm": self.max_wire_mm,
            "max_energy_pj_per_flit": self.max_energy_pj_per_flit,
            "wire_fabric": self.wire_fabric,
        }

    @classmethod
    def from_dict(cls, raw: dict) -> "BudgetSpec":
        known = {"max_area_mm2", "max_power_w", "max_wire_mm",
                 "max_energy_pj_per_flit", "wire_fabric"}
        unknown = sorted(set(raw) - known)
        if unknown:
            raise ValueError(
                f"unknown budget key(s) {', '.join(unknown)} "
                f"(known: {', '.join(sorted(known))})")
        return cls(**raw)

    @classmethod
    def load(cls, path: str) -> "BudgetSpec":
        with open(path, "r", encoding="utf-8") as fh:
            return cls.from_dict(json.load(fh))


@dataclass
class BudgetReport:
    """Physical estimates plus any ceiling violations."""

    fabric_name: str
    area: AreaBreakdown
    wire_mm: float
    repeater_banks: int
    worst_route_energy_pj: float
    mean_route_energy_pj: float
    power_w: float
    power_basis: str  # "workload" or "peak-ceiling"
    findings: List[Finding] = field(default_factory=list)

    @property
    def within_budget(self) -> bool:
        return not any(f.is_error for f in self.findings)

    def to_dict(self) -> dict:
        return {
            "wire_fabric": self.fabric_name,
            "area_mm2": self.area.total_mm2,
            "area_breakdown_um2": {
                "stations": self.area.stations_um2,
                "bridges": self.area.bridges_um2,
                "queues": self.area.queues_um2,
                "wires": self.area.wires_um2,
            },
            "wire_mm": self.wire_mm,
            "repeater_banks": self.repeater_banks,
            "worst_route_energy_pj": self.worst_route_energy_pj,
            "mean_route_energy_pj": self.mean_route_energy_pj,
            "power_w": self.power_w,
            "power_basis": self.power_basis,
            "within_budget": self.within_budget,
            "findings": [f.to_dict() for f in self.findings],
        }


def _budget_finding(rule: str, message: str) -> Finding:
    return Finding(rule=rule, message=message, severity=Severity.ERROR,
                   path=None)


def _wire_length_mm(spec: TopologySpec, config: MultiRingConfig,
                    fabric: WireFabric) -> float:
    stop_um = fabric.jump_um_at_3ghz
    total_um = 0.0
    for ring in spec.rings:
        lanes = (ring.lanes if ring.lanes is not None
                 else config.lanes_per_direction)
        directions = 2 if ring.bidirectional else 1
        total_um += ring.nstops * stop_um * lanes * directions
    for bridge in spec.bridges:
        if bridge.level == 2:
            total_um += 2 * bridge.link_latency * stop_um
    return total_um / 1000.0


def evaluate_budget(
    spec: TopologySpec,
    config: MultiRingConfig,
    budget: BudgetSpec,
    *,
    worst_route_hops: int,
    mean_route_hops: float,
    worst_route_l2_crossings: int,
    delivered_ceiling_bytes_per_cycle: float,
    offered_flits_per_cycle: Optional[float] = None,
    energy: Optional[EnergyModel] = None,
) -> BudgetReport:
    """Estimate physicals for (spec, config) and check the ceilings.

    Route-shape inputs (hop counts, L2 crossings) come from the bounds
    pass so the energy model prices the same routes the latency bound
    measured.
    """
    fabric = budget.fabric()
    energy = energy or EnergyModel()
    area = noc_area(spec, fabric, config.queues,
                    lanes_per_direction=config.lanes_per_direction)
    wire_mm = _wire_length_mm(spec, config, fabric)
    hop_mm = fabric.jump_um_at_3ghz / 1000.0
    worst_pj = (worst_route_hops * energy.bufferless_hop_pj(hop_mm)
                + worst_route_l2_crossings * energy.d2d_crossing_pj()
                + energy.allocation_pj_per_flit)
    mean_pj = (mean_route_hops * energy.bufferless_hop_pj(hop_mm)
               + energy.allocation_pj_per_flit)

    flit_bytes = FLIT_BITS / 8.0
    if offered_flits_per_cycle is not None:
        flits_per_cycle = offered_flits_per_cycle
        route_pj = mean_pj
        basis = "workload"
    else:
        flits_per_cycle = delivered_ceiling_bytes_per_cycle / flit_bytes
        route_pj = worst_pj
        basis = "peak-ceiling"
    power_w = flits_per_cycle * NOC_FREQ_HZ * route_pj * 1e-12

    # One repeater plan per ring lane-direction, for the bank count.
    banks = 0
    for ring in spec.rings:
        lanes = (ring.lanes if ring.lanes is not None
                 else config.lanes_per_direction)
        directions = 2 if ring.bidirectional else 1
        plan = plan_repeaters(fabric, ring.nstops * fabric.jump_um_at_3ghz,
                              FLIT_BITS)
        banks += plan.repeater_banks * lanes * directions

    report = BudgetReport(
        fabric_name=fabric.name, area=area, wire_mm=wire_mm,
        repeater_banks=banks, worst_route_energy_pj=worst_pj,
        mean_route_energy_pj=mean_pj, power_w=power_w, power_basis=basis)

    if (budget.max_area_mm2 is not None
            and area.total_mm2 > budget.max_area_mm2):
        report.findings.append(_budget_finding(
            "budget-area",
            f"estimated NoC area {area.total_mm2:.3f} mm^2 exceeds the "
            f"{budget.max_area_mm2:.3f} mm^2 ceiling on the "
            f"{fabric.name} fabric"))
    if budget.max_wire_mm is not None and wire_mm > budget.max_wire_mm:
        report.findings.append(_budget_finding(
            "budget-wire",
            f"estimated wire length {wire_mm:.2f} mm exceeds the "
            f"{budget.max_wire_mm:.2f} mm ceiling"))
    if (budget.max_energy_pj_per_flit is not None
            and worst_pj > budget.max_energy_pj_per_flit):
        report.findings.append(_budget_finding(
            "budget-energy",
            f"worst-case route energy {worst_pj:.1f} pJ/flit exceeds "
            f"the {budget.max_energy_pj_per_flit:.1f} pJ/flit ceiling"))
    if budget.max_power_w is not None and power_w > budget.max_power_w:
        report.findings.append(_budget_finding(
            "budget-power",
            f"estimated power {power_w:.3f} W ({basis}) exceeds the "
            f"{budget.max_power_w:.3f} W ceiling"))
    return report
