"""Static fabric analyzer: abstract bounds without simulation.

``repro.analyze`` answers "is this configuration feasible, and roughly
how will it perform?" purely from :class:`TopologySpec` +
:class:`MultiRingConfig` — no simulator stepping:

- :mod:`repro.analyze.bounds` — bandwidth ceilings (per ring, per
  bridge link, bisection) and calibrated zero-load latency bounds;
- :mod:`repro.analyze.workload` — injection-rate descriptors;
- :mod:`repro.analyze.occupancy` — saturation estimates of workload
  demand against those ceilings;
- :mod:`repro.analyze.budget` — area/energy/wire checks against
  :mod:`repro.phys` with user ceilings;
- :mod:`repro.analyze.report` — the ``repro-noc analyze`` report
  folding everything (plus CDG deadlock classification) together;
- :mod:`repro.analyze.prefilter` — the sweep-pruning predicates built
  on the same passes.

Distinct from :mod:`repro.analysis` (post-hoc measurement analysis of
simulation results): this package predicts, that one measures.
"""

from repro.analyze.bounds import (
    FabricBounds,
    LatencyBound,
    LinkBound,
    RingBound,
    RouteShape,
    compute_bounds,
    route_shape,
    zero_load_route_cycles,
)
from repro.analyze.budget import BudgetReport, BudgetSpec, evaluate_budget
from repro.analyze.occupancy import OccupancyEstimate, estimate_occupancy
from repro.analyze.prefilter import (
    campaign_prefilter,
    infeasible_reason,
    uniform_rate_prefilter,
)
from repro.analyze.report import (
    AnalysisReport,
    SystemAnalysis,
    analyze_system,
    run_analyze,
)
from repro.analyze.workload import (
    Flow,
    WorkloadDescriptor,
    uniform_for_topology,
)

__all__ = [
    "AnalysisReport",
    "BudgetReport",
    "BudgetSpec",
    "FabricBounds",
    "Flow",
    "LatencyBound",
    "LinkBound",
    "OccupancyEstimate",
    "RingBound",
    "RouteShape",
    "SystemAnalysis",
    "WorkloadDescriptor",
    "analyze_system",
    "campaign_prefilter",
    "compute_bounds",
    "estimate_occupancy",
    "evaluate_budget",
    "infeasible_reason",
    "route_shape",
    "run_analyze",
    "uniform_for_topology",
    "uniform_rate_prefilter",
    "zero_load_route_cycles",
]
