"""Sweep prefilters: static feasibility as a pruning predicate.

Adapters between the analyzer and the sweep runner's ``prefilter=``
hook (:mod:`repro.perf.sweep`): a prefilter maps ``(SweepPoint, seed)``
to ``None`` (run the point) or a human-readable skip reason.  They run
in the parent process before dispatch, so they may be closures; only
the worker function itself must be picklable.

This is the pruning predicate the design-space autotuner (ROADMAP)
needs: a statically-infeasible point — offered load above a hard
transport ceiling, a deadlock-capable channel cycle, a replay buffer
that throttles its own link, a budget the floorplan cannot fit — wastes
a full simulation timeout to learn what the config already says.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Optional

from repro.core.config import MultiRingConfig, TopologySpec
from repro.analyze.budget import BudgetSpec
from repro.analyze.report import analyze_system
from repro.analyze.workload import WorkloadDescriptor, uniform_for_topology

if TYPE_CHECKING:
    # Type-only: importing repro.perf.sweep at runtime would pull the
    # simulation stack into the otherwise-static analyzer package.
    from repro.perf.sweep import SweepPoint


def infeasible_reason(
    spec: TopologySpec,
    config: MultiRingConfig,
    workload: Optional[WorkloadDescriptor] = None,
    budget: Optional[BudgetSpec] = None,
) -> Optional[str]:
    """First static-infeasibility reason for a fabric, or None.

    Runs the full analyzer passes (bounds, occupancy, budget, CDG) and
    reports the first error finding's message.
    """
    system = analyze_system("prefilter", spec, config,
                            workload=workload, budget=budget)
    for finding in system.findings:
        if finding.is_error:
            return f"[{finding.rule}] {finding.message}"
    return None


def uniform_rate_prefilter(
    spec: TopologySpec,
    config: MultiRingConfig,
    rate_param: str = "rate",
    budget: Optional[BudgetSpec] = None,
) -> Callable[[SweepPoint, int], Optional[str]]:
    """Prefilter for sweeps whose points carry a per-node injection rate.

    Each point's ``rate_param`` (flits/cycle/node) becomes a uniform
    workload over the fabric's nodes; the point is skipped when that
    load statically exceeds a transport ceiling (or the budget fails).
    """
    def check(point: SweepPoint, seed: int) -> Optional[str]:
        params = point.as_dict()
        rate = params.get(rate_param)
        workload = (uniform_for_topology(spec, float(rate))
                    if rate is not None else None)
        return infeasible_reason(spec, config, workload=workload,
                                 budget=budget)
    return check


def campaign_prefilter(point: SweepPoint, seed: int) -> Optional[str]:
    """Static feasibility of a fault-campaign point.

    Rebuilds the point's reliability config exactly as
    :func:`repro.faults.campaign.fault_campaign_point` will and runs the
    static reliability checks against the campaign's chiplet-pair
    topology — a replay buffer smaller than the link round trip
    backpressures the link before the first ack returns, so the point
    can only end in a watchdog wedge.
    """
    from repro.core.topology import chiplet_pair
    from repro.faults.link import LinkReliabilityConfig
    from repro.lint.validator import validate_reliability

    params = point.as_dict()
    try:
        reliability = LinkReliabilityConfig(
            retry_limit=params.get("retry_limit", 8),
            replay_depth=params.get("replay_depth", 0))
    except ValueError as exc:
        return f"[bad-reliability-config] {exc}"
    topology, _, _ = chiplet_pair(nodes_per_ring=4)
    latencies = [b.link_latency for b in topology.bridges if b.level == 2]
    for finding in validate_reliability(reliability, latencies):
        if finding.is_error:
            return f"[{finding.rule}] {finding.message}"
    return None
