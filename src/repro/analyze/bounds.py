"""Abstract bandwidth and latency bounds, computed purely from config.

Everything here is derived from :class:`TopologySpec` +
:class:`MultiRingConfig` structure — no simulator stepping.  Three bound
families:

- **transport ceilings** — a ring with ``nstops`` stops, ``lanes`` lanes
  per direction and ``d`` directions moves at most ``nstops * lanes * d``
  slot-hops per cycle (every slot advances one hop per cycle, Section
  4.2's bufferless pipeline); a ring bridge forwards at most one flit
  per cycle per direction (:mod:`repro.core.bridge` pops a single flit
  from each Rx per step).  Multiplying by
  ``BANDWIDTH.ring_lane_bytes_per_cycle`` converts slot counts to bytes.
- **delivered ceiling** — end-to-end delivered bandwidth is capped by
  the narrower of aggregate injection capacity (each station interface
  can claim at most ``lanes * d`` passing slots per cycle) and aggregate
  ejection drain (``eject_drain_per_cycle`` per interface).
- **zero-load latency** — at zero load a flit's network latency is
  exactly its in-ring hop distance plus a fixed per-bridge-crossing
  pipeline cost, measured against the simulator: an RBRG-L1 crossing
  costs ``LATENCY.bridge_l1 + 1`` cycles (pipeline plus re-injection)
  and an RBRG-L2 crossing ``LATENCY.bridge_l2 + 1 + link_latency``.
  Contention and deflection only add cycles, so the zero-load figure is
  a sound lower bound on simulated latency (property-tested in
  ``tests/test_analyze_properties.py``).

Bisection bandwidth enumerates balanced ring bipartitions exactly up to
:data:`_EXACT_BISECTION_RINGS` rings and falls back to a labelled
greedy estimate above that — the report says which method ran (no
silent caps).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import combinations
from typing import Dict, List, Optional, Tuple

from repro.core.config import MultiRingConfig, TopologySpec
from repro.core.routing import Hop, Router, ring_distance
from repro.params import BANDWIDTH, LATENCY, bytes_per_cycle_to_tbps

#: Ring-count ceiling for exact (exhaustive) bisection enumeration.
_EXACT_BISECTION_RINGS = 16

#: One ring slot carries one flit payload (a cache line) per cycle.
_SLOT_BYTES = BANDWIDTH.ring_lane_bytes_per_cycle


def _ring_lanes(spec: TopologySpec, config: MultiRingConfig,
                ring_id: int) -> int:
    for ring in spec.rings:
        if ring.ring_id == ring_id and ring.lanes is not None:
            return ring.lanes
    return config.lanes_per_direction


@dataclass
class RingBound:
    """Transport ceiling of one ring."""

    ring_id: int
    nstops: int
    bidirectional: bool
    lanes: int

    @property
    def directions(self) -> int:
        return 2 if self.bidirectional else 1

    @property
    def slot_hops_per_cycle(self) -> int:
        """Slot advances per cycle: the ring's transport capacity."""
        return self.nstops * self.lanes * self.directions

    @property
    def transport_bytes_per_cycle(self) -> int:
        return self.slot_hops_per_cycle * _SLOT_BYTES

    def to_dict(self) -> dict:
        return {
            "ring_id": self.ring_id,
            "nstops": self.nstops,
            "bidirectional": self.bidirectional,
            "lanes": self.lanes,
            "slot_hops_per_cycle": self.slot_hops_per_cycle,
            "transport_bytes_per_cycle": self.transport_bytes_per_cycle,
        }


@dataclass
class LinkBound:
    """Forwarding ceiling of one ring bridge (per direction)."""

    bridge_id: int
    level: int
    ring_a: int
    ring_b: int
    link_latency: int

    #: repro.core.bridge moves one flit per cycle per direction.
    flits_per_cycle_per_direction: int = 1

    @property
    def bytes_per_cycle_per_direction(self) -> int:
        return self.flits_per_cycle_per_direction * _SLOT_BYTES

    @property
    def crossing_cycles(self) -> int:
        """Zero-load cycles added by crossing this bridge (calibrated)."""
        if self.level == 2:
            return LATENCY.bridge_l2 + 1 + self.link_latency
        return LATENCY.bridge_l1 + 1

    def to_dict(self) -> dict:
        return {
            "bridge_id": self.bridge_id,
            "level": self.level,
            "ring_a": self.ring_a,
            "ring_b": self.ring_b,
            "link_latency": self.link_latency,
            "flits_per_cycle_per_direction":
                self.flits_per_cycle_per_direction,
            "bytes_per_cycle_per_direction":
                self.bytes_per_cycle_per_direction,
            "crossing_cycles": self.crossing_cycles,
        }


@dataclass
class BisectionBound:
    """Minimum balanced-cut bandwidth between ring halves."""

    bytes_per_cycle: float
    method: str  # "exact", "greedy", or "single-ring"
    partition: Tuple[Tuple[int, ...], Tuple[int, ...]] = ((), ())

    def to_dict(self) -> dict:
        return {
            "bytes_per_cycle": self.bytes_per_cycle,
            "tbps": bytes_per_cycle_to_tbps(self.bytes_per_cycle),
            "method": self.method,
            "partition": [list(self.partition[0]), list(self.partition[1])],
        }


@dataclass
class LatencyBound:
    """Zero-load latency statistics over analyzed station pairs.

    Route-shape aggregates (in-ring hop counts, L2 crossings) ride
    along so the energy model can price the same routes.
    """

    pairs: int
    min_cycles: int
    max_cycles: int
    mean_cycles: float
    worst_pair: Tuple[int, int]
    worst_route_hops: int = 0
    mean_route_hops: float = 0.0
    worst_route_l2_crossings: int = 0

    def to_dict(self) -> dict:
        return {
            "pairs": self.pairs,
            "min_cycles": self.min_cycles,
            "max_cycles": self.max_cycles,
            "mean_cycles": self.mean_cycles,
            "worst_pair": list(self.worst_pair),
            "worst_route_hops": self.worst_route_hops,
            "mean_route_hops": self.mean_route_hops,
            "worst_route_l2_crossings": self.worst_route_l2_crossings,
        }


@dataclass
class FabricBounds:
    """The complete abstract-bound set for one (spec, config) pair."""

    rings: List[RingBound] = field(default_factory=list)
    links: List[LinkBound] = field(default_factory=list)
    inject_bytes_per_cycle: float = 0.0
    eject_bytes_per_cycle: float = 0.0
    bisection: Optional[BisectionBound] = None
    latency: Optional[LatencyBound] = None

    @property
    def delivered_ceiling_bytes_per_cycle(self) -> float:
        """End-to-end delivered-bandwidth ceiling (the headline bound)."""
        return min(self.inject_bytes_per_cycle, self.eject_bytes_per_cycle)

    def to_dict(self) -> dict:
        ceiling = self.delivered_ceiling_bytes_per_cycle
        return {
            "rings": [r.to_dict() for r in self.rings],
            "links": [l.to_dict() for l in self.links],
            "inject_bytes_per_cycle": self.inject_bytes_per_cycle,
            "eject_bytes_per_cycle": self.eject_bytes_per_cycle,
            "delivered_ceiling_bytes_per_cycle": ceiling,
            "delivered_ceiling_tbps": bytes_per_cycle_to_tbps(ceiling),
            "bisection": self.bisection.to_dict() if self.bisection else None,
            "zero_load_latency": (self.latency.to_dict()
                                  if self.latency else None),
        }


@dataclass(frozen=True)
class RouteShape:
    """Zero-load decomposition of one route."""

    cycles: int        # total zero-load network latency
    ring_hops: int     # in-ring stop-to-stop hops
    l1_crossings: int
    l2_crossings: int


def route_shape(router: Router, spec: TopologySpec,
                src: int, dst: int) -> RouteShape:
    """Zero-load latency and hop decomposition of the route src -> dst."""
    rings = {r.ring_id: r for r in spec.rings}
    bridges = {b.bridge_id: b for b in spec.bridges}
    _, stop = router.placement(src)
    cycles = 0
    ring_hops = 0
    l1 = l2 = 0
    for hop in router.route(src, dst):
        ring = rings[hop.ring]
        dist = ring_distance(ring.nstops, stop, hop.exit_stop,
                             ring.bidirectional)
        ring_hops += dist
        cycles += dist
        if hop.port_key[0] == "bridge":
            bridge = bridges[hop.port_key[1]]
            side = hop.port_key[2]
            cycles += LinkBound(
                bridge_id=bridge.bridge_id, level=bridge.level,
                ring_a=bridge.ring_a, ring_b=bridge.ring_b,
                link_latency=bridge.link_latency).crossing_cycles
            if bridge.level == 2:
                l2 += 1
            else:
                l1 += 1
            # Entry stop on the next ring is the far bridge endpoint.
            stop = bridge.stop_b if side == 0 else bridge.stop_a
    return RouteShape(cycles=cycles, ring_hops=ring_hops,
                      l1_crossings=l1, l2_crossings=l2)


def zero_load_route_cycles(router: Router, spec: TopologySpec,
                           src: int, dst: int) -> int:
    """Zero-load network latency (cycles) of the route src -> dst."""
    return route_shape(router, spec, src, dst).cycles


def route_hops(router: Router, src: int, dst: int) -> List[Hop]:
    """The router's hop list for a pair (exposed for occupancy math)."""
    return router.route(src, dst)


def _latency_bound(spec: TopologySpec, router: Router) -> Optional[LatencyBound]:
    nodes = sorted(p.node for p in spec.nodes)
    total = 0
    total_hops = 0
    count = 0
    lo: Optional[int] = None
    hi: Optional[int] = None
    worst = (0, 0)
    worst_shape: Optional[RouteShape] = None
    for src in nodes:
        for dst in nodes:
            if src == dst:
                continue
            shape = route_shape(router, spec, src, dst)
            total += shape.cycles
            total_hops += shape.ring_hops
            count += 1
            if lo is None or shape.cycles < lo:
                lo = shape.cycles
            if hi is None or shape.cycles > hi:
                hi = shape.cycles
                worst = (src, dst)
                worst_shape = shape
    if count == 0 or lo is None or hi is None or worst_shape is None:
        return None
    return LatencyBound(
        pairs=count, min_cycles=lo, max_cycles=hi,
        mean_cycles=total / count, worst_pair=worst,
        worst_route_hops=worst_shape.ring_hops,
        mean_route_hops=total_hops / count,
        worst_route_l2_crossings=worst_shape.l2_crossings)


def _cut_bytes(links_by_ring_pair: Dict[Tuple[int, int], float],
               side_a: frozenset) -> float:
    cut = 0.0
    for (ra, rb), bw in links_by_ring_pair.items():
        if (ra in side_a) != (rb in side_a):
            cut += bw
    return cut


def _bisection(spec: TopologySpec, config: MultiRingConfig,
               links: List[LinkBound]) -> BisectionBound:
    ring_ids = sorted(r.ring_id for r in spec.rings)
    if len(ring_ids) == 1:
        # A bisection of one ring cuts it in two places; each cut point
        # severs every lane in every direction.
        ring = spec.rings[0]
        lanes = _ring_lanes(spec, config, ring.ring_id)
        dirs = 2 if ring.bidirectional else 1
        bw = 2 * lanes * dirs * _SLOT_BYTES
        return BisectionBound(bytes_per_cycle=float(bw),
                              method="single-ring",
                              partition=((ring.ring_id,), ()))

    # Bridge bandwidth between ring pairs: both directions of each link.
    pair_bw: Dict[Tuple[int, int], float] = {}
    for link in links:
        key = (min(link.ring_a, link.ring_b), max(link.ring_a, link.ring_b))
        pair_bw[key] = (pair_bw.get(key, 0.0)
                        + 2 * link.bytes_per_cycle_per_direction)

    half = len(ring_ids) // 2
    if len(ring_ids) <= _EXACT_BISECTION_RINGS:
        best: Optional[Tuple[float, frozenset]] = None
        # Fix ring_ids[0] on side A to halve the symmetric search.
        rest = ring_ids[1:]
        for combo in combinations(rest, half - 1 if half else 0):
            side_a = frozenset((ring_ids[0],) + combo)
            cut = _cut_bytes(pair_bw, side_a)
            if best is None or cut < best[0]:
                best = (cut, side_a)
        assert best is not None
        side_a = best[1]
        side_b = tuple(r for r in ring_ids if r not in side_a)
        return BisectionBound(bytes_per_cycle=best[0], method="exact",
                              partition=(tuple(sorted(side_a)), side_b))

    # Greedy fallback for very large ring counts: alternate assignment
    # in ring-id order.  Labelled so the report never passes an estimate
    # off as exact.
    side_a = frozenset(ring_ids[:half])
    side_b = tuple(ring_ids[half:])
    return BisectionBound(bytes_per_cycle=_cut_bytes(pair_bw, side_a),
                          method="greedy",
                          partition=(tuple(sorted(side_a)), side_b))


def compute_bounds(spec: TopologySpec, config: MultiRingConfig,
                   router: Optional[Router] = None,
                   include_latency: bool = True) -> FabricBounds:
    """All abstract bounds for one fabric configuration."""
    bounds = FabricBounds()
    for ring in sorted(spec.rings, key=lambda r: r.ring_id):
        bounds.rings.append(RingBound(
            ring_id=ring.ring_id, nstops=ring.nstops,
            bidirectional=ring.bidirectional,
            lanes=_ring_lanes(spec, config, ring.ring_id)))
    for bridge in sorted(spec.bridges, key=lambda b: b.bridge_id):
        bounds.links.append(LinkBound(
            bridge_id=bridge.bridge_id, level=bridge.level,
            ring_a=bridge.ring_a, ring_b=bridge.ring_b,
            link_latency=bridge.link_latency))

    ring_by_id = {r.ring_id: r for r in bounds.rings}
    inject = 0.0
    eject = 0.0
    for placement in spec.nodes:
        ring = ring_by_id[placement.ring]
        inject += ring.lanes * ring.directions * _SLOT_BYTES
        eject += config.eject_drain_per_cycle * _SLOT_BYTES
    bounds.inject_bytes_per_cycle = inject
    bounds.eject_bytes_per_cycle = eject

    bounds.bisection = _bisection(spec, config, bounds.links)
    if include_latency and spec.nodes:
        if router is None:
            router = Router(spec, bridge_penalty=config.bridge_route_penalty)
        bounds.latency = _latency_bound(spec, router)
    return bounds


def link_rate_tbps(bytes_per_cycle: float) -> float:
    """Convenience wrapper matching the params helper's defaults."""
    return bytes_per_cycle_to_tbps(bytes_per_cycle)
