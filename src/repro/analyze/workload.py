"""Workload injection-rate descriptors for the static analyzer.

A :class:`WorkloadDescriptor` is the analyzer's stand-in for a traffic
generator: a list of :class:`Flow` entries, each an average injection
rate (flits per cycle) from one station to another.  Rates are long-run
averages, so fractional values are meaningful (0.1 = one flit every ten
cycles); the occupancy model in :mod:`repro.analyze.occupancy` turns
them into per-ring and per-link utilization estimates without stepping
the simulator.

Descriptors are plain data: they serialize to/from JSON dicts so the
CLI can take ``--injection-rate`` (uniform random shorthand) or a full
per-flow JSON file, and sweep prefilters can build them from sweep
point parameters.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence

from repro.core.config import TopologySpec


@dataclass(frozen=True)
class Flow:
    """One average traffic flow: ``rate`` flits/cycle from src to dst."""

    src: int
    dst: int
    rate: float

    def to_dict(self) -> dict:
        return {"src": self.src, "dst": self.dst, "rate": self.rate}

    @classmethod
    def from_dict(cls, raw: dict) -> "Flow":
        return cls(src=int(raw["src"]), dst=int(raw["dst"]),
                   rate=float(raw["rate"]))


@dataclass
class WorkloadDescriptor:
    """A set of average flows describing offered load on a fabric."""

    flows: List[Flow] = field(default_factory=list)
    name: str = "workload"

    @classmethod
    def uniform(cls, nodes: Sequence[int], per_node_rate: float,
                name: str = "uniform") -> "WorkloadDescriptor":
        """Uniform-random traffic: each node injects ``per_node_rate``
        flits/cycle, spread evenly over every other node.

        This mirrors :func:`repro.testing.uniform_messages` in the
        average — a uniform destination draw is 1/(n-1) of the node's
        rate per destination.
        """
        nodes = list(nodes)
        flows: List[Flow] = []
        if len(nodes) < 2 or per_node_rate <= 0:
            return cls(flows=flows, name=name)
        share = per_node_rate / (len(nodes) - 1)
        for src in nodes:
            for dst in nodes:
                if src != dst:
                    flows.append(Flow(src=src, dst=dst, rate=share))
        return cls(flows=flows, name=name)

    @property
    def per_node_injection(self) -> Dict[int, float]:
        """Total injection rate per source node, in node-id order."""
        totals: Dict[int, float] = {}
        for flow in self.flows:
            totals[flow.src] = totals.get(flow.src, 0.0) + flow.rate
        return {node: totals[node] for node in sorted(totals)}

    @property
    def per_node_ejection(self) -> Dict[int, float]:
        """Total delivery rate per destination node, in node-id order."""
        totals: Dict[int, float] = {}
        for flow in self.flows:
            totals[flow.dst] = totals.get(flow.dst, 0.0) + flow.rate
        return {node: totals[node] for node in sorted(totals)}

    @property
    def total_rate(self) -> float:
        return sum(f.rate for f in self.flows)

    def to_dict(self) -> dict:
        return {"name": self.name,
                "flows": [f.to_dict() for f in self.flows]}

    @classmethod
    def from_dict(cls, raw: dict) -> "WorkloadDescriptor":
        return cls(name=str(raw.get("name", "workload")),
                   flows=[Flow.from_dict(f) for f in raw.get("flows", [])])


def uniform_for_topology(spec: TopologySpec,
                         per_node_rate: float) -> WorkloadDescriptor:
    """Uniform-random workload over every placed node of ``spec``."""
    return WorkloadDescriptor.uniform(
        sorted(p.node for p in spec.nodes), per_node_rate)
