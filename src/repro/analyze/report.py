"""`repro-noc analyze` orchestration: one structured AnalysisReport.

Folds the four static passes over each analyzed system into one report:

1. abstract bandwidth/latency bounds (:mod:`repro.analyze.bounds`);
2. workload occupancy/saturation estimates
   (:mod:`repro.analyze.occupancy`), when an injection-rate descriptor
   is given;
3. physical budget checks (:mod:`repro.analyze.budget`), when budget
   ceilings are given;
4. deadlock classification, reusing the channel-dependency analyzer
   from :mod:`repro.verify.cdg`.

No pass steps the simulator: everything is a function of
``TopologySpec`` + ``MultiRingConfig`` (+ the workload/budget inputs).
Findings, exit codes, and ordering follow the shared
:mod:`repro.reporting` conventions, so ``analyze`` composes with
``check`` and ``verify`` in CI.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.core.config import MultiRingConfig, TopologySpec
from repro.core.routing import Router
from repro.analyze.bounds import FabricBounds, compute_bounds
from repro.analyze.budget import BudgetReport, BudgetSpec, evaluate_budget
from repro.analyze.occupancy import OccupancyEstimate, estimate_occupancy
from repro.analyze.workload import WorkloadDescriptor, uniform_for_topology
from repro.lint.findings import Finding, Severity
from repro.reporting import FindingsReport, sort_findings


@dataclass
class SystemAnalysis:
    """Everything the analyzer derived about one system."""

    name: str
    bounds: FabricBounds
    cdg: dict = field(default_factory=dict)
    occupancy: Optional[OccupancyEstimate] = None
    budget: Optional[BudgetReport] = None
    findings: List[Finding] = field(default_factory=list)

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "bounds": self.bounds.to_dict(),
            "cdg": self.cdg,
            "occupancy": (self.occupancy.to_dict()
                          if self.occupancy else None),
            "budget": self.budget.to_dict() if self.budget else None,
            "findings": [f.to_dict()
                         for f in sort_findings(self.findings)],
        }


@dataclass
class AnalysisReport(FindingsReport):
    """All analyzed systems plus the aggregated findings list.

    The findings list (inherited) aggregates every per-system finding,
    so the shared exit-code/ordering conventions apply unchanged.
    """

    systems: List[SystemAnalysis] = field(default_factory=list)

    def add_system(self, system: SystemAnalysis) -> None:
        self.systems.append(system)
        self.findings.extend(system.findings)

    def to_dict(self) -> dict:
        out = self.findings_to_dict()
        out["systems"] = [s.to_dict() for s in self.systems]
        return out

    def format(self) -> str:
        lines: List[str] = []
        for system in self.systems:
            lines.append(f"== {system.name} ==")
            b = system.bounds
            ceiling = b.delivered_ceiling_bytes_per_cycle
            lines.append(
                f"  bandwidth: delivered ceiling {ceiling:.0f} B/cycle "
                f"(inject {b.inject_bytes_per_cycle:.0f}, eject "
                f"{b.eject_bytes_per_cycle:.0f})")
            for ring in b.rings:
                lines.append(
                    f"    ring {ring.ring_id}: "
                    f"{ring.slot_hops_per_cycle} slot-hops/cycle "
                    f"({ring.transport_bytes_per_cycle} B/cycle)")
            for link in b.links:
                lines.append(
                    f"    bridge {link.bridge_id} (L{link.level}): "
                    f"{link.bytes_per_cycle_per_direction} B/cycle per "
                    f"direction, crossing {link.crossing_cycles} cycles")
            if b.bisection is not None:
                lines.append(
                    f"  bisection: {b.bisection.bytes_per_cycle:.0f} "
                    f"B/cycle ({b.bisection.method})")
            if b.latency is not None:
                lat = b.latency
                lines.append(
                    f"  zero-load latency: {lat.min_cycles}.."
                    f"{lat.max_cycles} cycles (mean {lat.mean_cycles:.1f} "
                    f"over {lat.pairs} pairs; worst {lat.worst_pair})")
            if system.occupancy is not None:
                occ = system.occupancy
                verdict = "feasible" if occ.feasible else "INFEASIBLE"
                lines.append(
                    f"  occupancy[{occ.workload_name}]: {verdict} — max "
                    f"ring {occ.max_ring_utilization:.0%}, max link "
                    f"{occ.max_link_utilization:.0%}")
            if system.budget is not None:
                bud = system.budget
                verdict = ("within budget" if bud.within_budget
                           else "OVER BUDGET")
                lines.append(
                    f"  budget[{bud.fabric_name}]: {verdict} — area "
                    f"{bud.area.total_mm2:.3f} mm^2, wire "
                    f"{bud.wire_mm:.1f} mm, worst route "
                    f"{bud.worst_route_energy_pj:.0f} pJ/flit, power "
                    f"{bud.power_w:.2f} W ({bud.power_basis})")
            classes = sorted(
                {cyc["classification"]
                 for cyc in system.cdg.get("cycles", [])})
            ncycles = len(system.cdg.get("cycles", []))
            lines.append(
                f"  cdg: {ncycles} cyclic component(s)"
                + (f" [{', '.join(classes)}]" if classes else ""))
            for finding in sort_findings(system.findings):
                lines.append("  " + finding.format())
        # Findings not attached to a system (e.g. a scenario file too
        # broken to analyze) still render — errors are never invisible.
        attached = {id(f) for s in self.systems for f in s.findings}
        for finding in sort_findings(
                [f for f in self.findings if id(f) not in attached]):
            lines.append(finding.format())
        lines.append(
            f"analyze: {len(self.errors)} error(s), "
            f"{len(self.warnings)} warning(s) across "
            f"{len(self.systems)} system(s)")
        return "\n".join(lines)


def analyze_system(
    name: str,
    spec: TopologySpec,
    config: MultiRingConfig,
    workload: Optional[WorkloadDescriptor] = None,
    budget: Optional[BudgetSpec] = None,
) -> SystemAnalysis:
    """Run every static pass over one (spec, config) pair."""
    # Deferred import mirrors the validator: repro.verify builds on the
    # lint findings types, so circularity is avoided at module load.
    from repro.verify.cdg import analyze_cdg

    router = Router(spec, bridge_penalty=config.bridge_route_penalty)
    bounds = compute_bounds(spec, config, router=router)
    cdg = analyze_cdg(spec, config)
    system = SystemAnalysis(name=name, bounds=bounds, cdg=cdg.to_dict())
    for cyc in cdg.deadlock_capable:
        system.findings.append(Finding(
            rule="deadlock-capable",
            message=(f"CDG cycle across rings {sorted(cyc.rings)} / "
                     f"bridges {sorted(cyc.bridges)} has no SWAP or "
                     "escape-slot break"),
            severity=Severity.ERROR, path=None))
    if workload is not None:
        system.occupancy = estimate_occupancy(
            spec, config, workload, bounds, router=router)
        system.findings.extend(system.occupancy.findings)
    if budget is not None and budget.constrained:
        lat = bounds.latency
        system.budget = evaluate_budget(
            spec, config, budget,
            worst_route_hops=lat.worst_route_hops if lat else 0,
            mean_route_hops=lat.mean_route_hops if lat else 0.0,
            worst_route_l2_crossings=(lat.worst_route_l2_crossings
                                      if lat else 0),
            delivered_ceiling_bytes_per_cycle=(
                bounds.delivered_ceiling_bytes_per_cycle),
            offered_flits_per_cycle=(workload.total_rate
                                     if workload else None))
        system.findings.extend(system.budget.findings)
    return system


def run_analyze(
    system_names: Optional[List[str]] = None,
    *,
    no_swap: bool = False,
    injection_rate: Optional[float] = None,
    workload: Optional[WorkloadDescriptor] = None,
    budget: Optional[BudgetSpec] = None,
) -> AnalysisReport:
    """Analyze the named built-in systems (the CLI entry point).

    ``injection_rate`` is the uniform-random shorthand: each system gets
    a per-node-rate uniform workload over its own nodes.  An explicit
    ``workload`` descriptor wins over the shorthand.
    """
    from repro.verify.report import resolve_systems

    report = AnalysisReport()
    for name, (spec, config, _) in resolve_systems(
            system_names or [], no_swap).items():
        system_workload = workload
        if system_workload is None and injection_rate is not None:
            system_workload = uniform_for_topology(spec, injection_rate)
        report.add_system(analyze_system(
            name, spec, config,
            workload=system_workload, budget=budget))
    return report
